"""Hardware platform models.

TeamPlay distinguishes *predictable* architectures (Cortex-M0, LEON3), whose
instruction timing can be statically determined, from *complex* architectures
(Apalis TK1, Jetson TX2/Nano), which must be characterised by dynamic
profiling.  This package provides parameterised models for both classes:

* :class:`~repro.hw.core.Core` — an ISA-level predictable core with
  per-instruction-class cycle and energy tables,
* :class:`~repro.hw.core.ComplexCore` — a coarse, component-level model of a
  CPU cluster or GPU (throughput + active/idle power),
* :class:`~repro.hw.core.Accelerator` — a fixed-function co-processor (e.g.
  the camera pill's FPGA image co-processor),
* :class:`~repro.hw.platform.Platform` — a board combining cores, memories
  and an optional battery,
* :mod:`~repro.hw.presets` — the concrete boards used in the paper's use
  cases.
"""

from repro.hw.core import Accelerator, ComplexCore, Core, CoreKind
from repro.hw.dvfs import OperatingPoint, sweet_spot
from repro.hw.memory import MemoryRegion, MemorySystem
from repro.hw.battery import Battery
from repro.hw.platform import Platform
from repro.hw import presets

__all__ = [
    "Accelerator",
    "Battery",
    "ComplexCore",
    "Core",
    "CoreKind",
    "MemoryRegion",
    "MemorySystem",
    "OperatingPoint",
    "Platform",
    "presets",
    "sweet_spot",
]
