"""Concrete platform presets for the boards used in the TeamPlay use cases.

The numeric tables are *model parameters*, not datasheet measurements.  They
follow the shape of the published models the paper relies on — the
ISA-level Cortex-M0 model of Georgiou et al. (energy dominated by memory
accesses and the inter-instruction switching overhead), the GR712RC/LEON3
power model of Nikov et al., and the coarse component-level models of Seewald
et al. for the Jetson-class boards — but absolute values are only intended to
be plausible in order of magnitude.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.battery import Battery
from repro.hw.core import Accelerator, ComplexCore, Core, CoreKind
from repro.hw.dvfs import OperatingPoint
from repro.hw.memory import MemoryRegion, MemorySystem
from repro.hw.platform import Platform

__all__ = [
    "cortex_m0",
    "leon3",
    "nucleo_stm32f091rc",
    "camera_pill_board",
    "gr712rc",
    "apalis_tk1",
    "jetson_tx2",
    "jetson_nano",
    "platform_by_name",
]


# ---------------------------------------------------------------------------
# Predictable cores
# ---------------------------------------------------------------------------
def _m0_operating_points() -> List[OperatingPoint]:
    return [
        OperatingPoint(8e6, 1.2, "m0-8MHz"),
        OperatingPoint(16e6, 1.2, "m0-16MHz"),
        OperatingPoint(32e6, 1.4, "m0-32MHz"),
        OperatingPoint(48e6, 1.65, "m0-48MHz"),
    ]


def cortex_m0(name: str = "cortex-m0", frequency_hz: float = 48e6) -> Core:
    """ARM Cortex-M0, the predictable core of the camera-pill and DL use cases."""
    opps = _m0_operating_points()
    nominal = min(opps, key=lambda opp: abs(opp.frequency_hz - frequency_hz))
    return Core(
        name=name,
        cycle_table={
            "alu": 1, "mul": 1, "div": 18, "load": 2, "store": 2,
            "branch": 3, "jump": 3, "call": 4, "ret": 4, "select": 2, "nop": 1,
        },
        energy_table={
            # joules per instruction at the nominal operating point
            "alu": 0.55e-9, "mul": 0.80e-9, "div": 6.0e-9,
            "load": 1.30e-9, "store": 1.40e-9,
            "branch": 0.90e-9, "jump": 0.85e-9,
            "call": 1.60e-9, "ret": 1.50e-9,
            "select": 0.70e-9, "nop": 0.35e-9,
        },
        nominal_opp=nominal,
        operating_points=opps,
        inter_class_overhead_j=0.12e-9,
        static_power_w=0.9e-3,
        branch_not_taken_cycles=1,
    )


def leon3(name: str = "leon3", frequency_hz: float = 80e6) -> Core:
    """LEON3FT core as found on the GR712RC space-grade SoC."""
    opps = [
        OperatingPoint(20e6, 1.0, "leon3-20MHz"),
        OperatingPoint(40e6, 1.1, "leon3-40MHz"),
        OperatingPoint(60e6, 1.25, "leon3-60MHz"),
        OperatingPoint(80e6, 1.5, "leon3-80MHz"),
    ]
    nominal = min(opps, key=lambda opp: abs(opp.frequency_hz - frequency_hz))
    return Core(
        name=name,
        cycle_table={
            "alu": 1, "mul": 4, "div": 35, "load": 2, "store": 3,
            "branch": 3, "jump": 2, "call": 3, "ret": 3, "select": 2, "nop": 1,
        },
        energy_table={
            "alu": 7.0e-9, "mul": 14.0e-9, "div": 60.0e-9,
            "load": 16.0e-9, "store": 18.0e-9,
            "branch": 9.0e-9, "jump": 8.0e-9,
            "call": 15.0e-9, "ret": 14.0e-9,
            "select": 8.0e-9, "nop": 4.0e-9,
        },
        nominal_opp=nominal,
        operating_points=opps,
        inter_class_overhead_j=1.0e-9,
        static_power_w=0.15,
        branch_not_taken_cycles=1,
    )


# ---------------------------------------------------------------------------
# Memory systems
# ---------------------------------------------------------------------------
def _mcu_memory(spm_bytes: int = 0) -> MemorySystem:
    regions = {
        "flash": MemoryRegion("flash", 256 * 1024, read_wait_states=2,
                              write_wait_states=6, energy_per_access_j=0.9e-9),
        "sram": MemoryRegion("sram", 32 * 1024, read_wait_states=0,
                             write_wait_states=0, energy_per_access_j=0.3e-9),
    }
    scratchpad = None
    if spm_bytes:
        regions["spm"] = MemoryRegion("spm", spm_bytes, read_wait_states=0,
                                      write_wait_states=0,
                                      energy_per_access_j=0.15e-9)
        scratchpad = "spm"
    return MemorySystem(regions=regions, code_region="flash",
                        data_region="sram", scratchpad_region=scratchpad)


def _leon_memory(spm_bytes: int = 16 * 1024) -> MemorySystem:
    regions = {
        "flash": MemoryRegion("prom", 8 * 1024 * 1024, read_wait_states=3,
                              write_wait_states=8, energy_per_access_j=9.0e-9),
        "sram": MemoryRegion("sdram", 256 * 1024 * 1024, read_wait_states=2,
                             write_wait_states=3, energy_per_access_j=6.0e-9),
    }
    scratchpad = None
    if spm_bytes:
        regions["spm"] = MemoryRegion("spm", spm_bytes, read_wait_states=0,
                                      write_wait_states=0,
                                      energy_per_access_j=2.0e-9)
        scratchpad = "spm"
    memory = MemorySystem(regions=regions, code_region="flash",
                          data_region="sram", scratchpad_region=scratchpad)
    return memory


# ---------------------------------------------------------------------------
# Predictable platforms
# ---------------------------------------------------------------------------
def nucleo_stm32f091rc() -> Platform:
    """The Nucleo STM32F091RC evaluation board (single Cortex-M0 class core)."""
    return Platform(
        name="nucleo-stm32f091rc",
        cores=[cortex_m0("m0", 48e6)],
        memory=_mcu_memory(spm_bytes=4 * 1024),
        description="Simple predictable MCU board used for security validation.",
    )


def camera_pill_board() -> Platform:
    """Camera pill: Cortex-M0 plus a low-power FPGA image co-processor."""
    fpga = Accelerator(
        name="fpga-imaging",
        kernels={
            # (seconds, joules) per processed image block
            "image_filter": (9.0e-6, 3.5e-6),
            "image_compress": (14.0e-6, 5.0e-6),
        },
        offload_overhead_s=40.0e-6,
        offload_overhead_j=8.0e-6,
        idle_power_w=0.4e-3,
    )
    return Platform(
        name="camera-pill",
        cores=[cortex_m0("m0", 32e6), fpga],
        memory=_mcu_memory(spm_bytes=2 * 1024),
        battery=Battery(capacity_wh=0.10, usable_fraction=0.9),
        description="Capsule endoscopy device: Cortex-M0 + FPGA co-processor.",
    )


def gr712rc() -> Platform:
    """Cobham-Gaisler GR712RC development board: dual LEON3FT."""
    return Platform(
        name="gr712rc",
        cores=[leon3("leon3-0", 80e6), leon3("leon3-1", 80e6)],
        memory=_leon_memory(),
        description="Space-grade dual-core LEON3FT running RTEMS.",
    )


# ---------------------------------------------------------------------------
# Complex platforms
# ---------------------------------------------------------------------------
def _complex_cpu(name: str, frequency_hz: float, voltage: float,
                 throughput: float, active_w: float, idle_w: float,
                 low_points: Optional[List[OperatingPoint]] = None) -> ComplexCore:
    nominal = OperatingPoint(frequency_hz, voltage, f"{name}-nominal")
    opps = list(low_points or []) + [nominal]
    return ComplexCore(
        name=name, kind=CoreKind.CPU, nominal_opp=nominal,
        throughput_units_per_s=throughput,
        active_power_w=active_w, idle_power_w=idle_w,
        operating_points=opps,
    )


def apalis_tk1() -> Platform:
    """Toradex Apalis TK1: quad Cortex-A15 + Kepler GPU (complex architecture)."""
    cpu_low = [
        OperatingPoint(0.8e9, 0.85, "a15-0.8GHz"),
        OperatingPoint(1.4e9, 0.95, "a15-1.4GHz"),
    ]
    cpus = [
        _complex_cpu(f"a15-{idx}", 2.2e9, 1.1, throughput=1.8e9,
                     active_w=2.6, idle_w=0.25, low_points=cpu_low)
        for idx in range(4)
    ]
    gpu = ComplexCore(
        name="gk20a-gpu", kind=CoreKind.GPU,
        nominal_opp=OperatingPoint(0.852e9, 1.0, "gk20a-nominal"),
        throughput_units_per_s=2.4e10,
        active_power_w=6.5, idle_power_w=0.45,
        operating_points=[OperatingPoint(0.396e9, 0.9, "gk20a-low"),
                          OperatingPoint(0.852e9, 1.0, "gk20a-nominal")],
        kernel_affinity={"conv": 2.5, "matmul": 2.2, "detect": 2.0,
                         "preprocess": 1.2},
    )
    return Platform(
        name="apalis-tk1",
        cores=cpus + [gpu],
        description="Complex heterogeneous board used by the UAV SAR use case.",
    )


def jetson_tx2() -> Platform:
    """NVIDIA Jetson TX2: 4x A57 + 2x Denver + Pascal GPU."""
    a57_low = [OperatingPoint(0.65e9, 0.8, "a57-0.65GHz"),
               OperatingPoint(1.2e9, 0.9, "a57-1.2GHz")]
    denver_low = [OperatingPoint(0.8e9, 0.85, "denver-0.8GHz")]
    a57 = [_complex_cpu(f"a57-{idx}", 2.0e9, 1.0, throughput=1.6e9,
                        active_w=1.9, idle_w=0.2, low_points=a57_low)
           for idx in range(4)]
    denver = [_complex_cpu(f"denver-{idx}", 2.0e9, 1.0, throughput=2.1e9,
                           active_w=2.2, idle_w=0.22, low_points=denver_low)
              for idx in range(2)]
    gpu = ComplexCore(
        name="pascal-gpu", kind=CoreKind.GPU,
        nominal_opp=OperatingPoint(1.3e9, 1.05, "pascal-nominal"),
        throughput_units_per_s=4.5e10,
        active_power_w=9.0, idle_power_w=0.5,
        operating_points=[OperatingPoint(0.65e9, 0.9, "pascal-low"),
                          OperatingPoint(1.3e9, 1.05, "pascal-nominal")],
        kernel_affinity={"conv": 2.8, "matmul": 2.5, "detect": 2.2,
                         "preprocess": 1.3},
    )
    return Platform(name="jetson-tx2", cores=a57 + denver + [gpu],
                    description="Complex heterogeneous board (UAV alternative).")


def jetson_nano() -> Platform:
    """NVIDIA Jetson Nano: 4x A57 + Maxwell GPU."""
    a57_low = [OperatingPoint(0.7e9, 0.8, "nano-a57-0.7GHz")]
    a57 = [_complex_cpu(f"a57-{idx}", 1.43e9, 0.95, throughput=1.2e9,
                        active_w=1.4, idle_w=0.15, low_points=a57_low)
           for idx in range(4)]
    gpu = ComplexCore(
        name="maxwell-gpu", kind=CoreKind.GPU,
        nominal_opp=OperatingPoint(0.92e9, 1.0, "maxwell-nominal"),
        throughput_units_per_s=1.8e10,
        active_power_w=4.5, idle_power_w=0.35,
        operating_points=[OperatingPoint(0.46e9, 0.9, "maxwell-low"),
                          OperatingPoint(0.92e9, 1.0, "maxwell-nominal")],
        kernel_affinity={"conv": 2.4, "matmul": 2.1, "detect": 1.9,
                         "preprocess": 1.2},
    )
    return Platform(name="jetson-nano", cores=a57 + [gpu],
                    description="Low-power complex board (UAV alternative).")


_FACTORIES = {
    "nucleo-stm32f091rc": nucleo_stm32f091rc,
    "camera-pill": camera_pill_board,
    "gr712rc": gr712rc,
    "apalis-tk1": apalis_tk1,
    "jetson-tx2": jetson_tx2,
    "jetson-nano": jetson_nano,
}


def platform_by_name(name: str) -> Platform:
    """Instantiate one of the preset platforms by its canonical name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; available: {sorted(_FACTORIES)}") from None
