"""Memory subsystem model for predictable platforms.

Predictable embedded SoCs expose a small set of memory regions with fixed
access latencies: on-chip flash (with wait states that grow with clock
frequency), SRAM, and optionally a software-managed scratchpad (SPM).  The
multi-criteria compiler exploits the SPM by placing hot code there, which is
one of the levers behind the camera-pill performance/energy improvements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import PlatformError


@dataclass
class MemoryRegion:
    """A single addressable memory region."""

    name: str
    size_bytes: int
    read_wait_states: int
    write_wait_states: int
    energy_per_access_j: float

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise PlatformError(f"memory region {self.name!r} must have a positive size")
        if self.read_wait_states < 0 or self.write_wait_states < 0:
            raise PlatformError(f"memory region {self.name!r} has negative wait states")
        if self.energy_per_access_j < 0:
            raise PlatformError(f"memory region {self.name!r} has negative access energy")


@dataclass
class MemorySystem:
    """The set of memory regions visible to a core.

    ``code_region`` names the region instructions are fetched from by
    default; the compiler's SPM allocation pass can override this per
    function.
    """

    regions: Dict[str, MemoryRegion] = field(default_factory=dict)
    code_region: str = "flash"
    data_region: str = "sram"
    scratchpad_region: Optional[str] = None

    def __post_init__(self):
        if not self.regions:
            self.regions = {
                "flash": MemoryRegion("flash", 256 * 1024, 1, 4, 1.0e-10),
                "sram": MemoryRegion("sram", 32 * 1024, 0, 0, 0.5e-10),
            }
        for required in (self.code_region, self.data_region):
            if required not in self.regions:
                raise PlatformError(f"memory system lacks region {required!r}")
        if self.scratchpad_region and self.scratchpad_region not in self.regions:
            raise PlatformError(
                f"memory system lacks scratchpad region {self.scratchpad_region!r}")

    # -- queries used by timing/energy models ------------------------------
    def region(self, name: str) -> MemoryRegion:
        try:
            return self.regions[name]
        except KeyError:
            raise PlatformError(f"unknown memory region {name!r}") from None

    def fetch_wait_states(self, region: Optional[str] = None) -> int:
        return self.region(region or self.code_region).read_wait_states

    def data_wait_states(self, write: bool = False,
                         region: Optional[str] = None) -> int:
        reg = self.region(region or self.data_region)
        return reg.write_wait_states if write else reg.read_wait_states

    def access_energy(self, region: Optional[str] = None) -> float:
        return self.region(region or self.data_region).energy_per_access_j

    @property
    def has_scratchpad(self) -> bool:
        return self.scratchpad_region is not None

    def scratchpad_size(self) -> int:
        if not self.scratchpad_region:
            return 0
        return self.region(self.scratchpad_region).size_bytes
