"""Processing element models.

Three kinds of processing elements appear in the TeamPlay use cases:

* predictable in-order cores (Cortex-M0, LEON3) whose per-instruction cycle
  and energy costs can be tabulated at the ISA level (:class:`Core`),
* complex cores and GPUs (Apalis TK1, Jetson TX2/Nano) that are characterised
  only coarsely by throughput and active/idle power (:class:`ComplexCore`),
* fixed-function accelerators such as the camera pill's FPGA image
  co-processor (:class:`Accelerator`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PlatformError
from repro.hw.dvfs import OperatingPoint

#: Instruction classes understood by the timing/energy tables.  The IR lowering
#: assigns exactly one of these to every instruction.
INSTRUCTION_CLASSES = (
    "alu",      # add/sub/logic/compare/move
    "mul",      # multiply
    "div",      # divide / modulo
    "load",     # memory read
    "store",    # memory write
    "branch",   # conditional branch (cost given for the taken case)
    "jump",     # unconditional jump
    "call",     # function call
    "ret",      # function return
    "select",   # conditional move (constant-time select)
    "nop",
)


class CoreKind(enum.Enum):
    """Broad category of a processing element."""

    CPU = "cpu"
    GPU = "gpu"
    FPGA = "fpga"


def _validate_table(name: str, table: Dict[str, float]) -> None:
    missing = [cls for cls in INSTRUCTION_CLASSES if cls not in table]
    if missing:
        raise PlatformError(f"{name} table is missing classes: {missing}")
    negative = [cls for cls, value in table.items() if value < 0]
    if negative:
        raise PlatformError(f"{name} table has negative entries: {negative}")


@dataclass
class Core:
    """An ISA-level model of a predictable, in-order core.

    ``cycle_table`` gives the base cycle cost of each instruction class,
    excluding memory wait states (the platform's memory system adds those).
    ``energy_table`` gives the dynamic energy per instruction, in joules, at
    the nominal operating point.  ``inter_class_overhead_j`` is the extra
    switching energy paid whenever two consecutive instructions belong to
    different classes — the dominant second-order effect in the Cortex-M0
    model of Georgiou et al. that the paper's EnergyAnalyser relies on.
    """

    name: str
    cycle_table: Dict[str, int]
    energy_table: Dict[str, float]
    nominal_opp: OperatingPoint
    operating_points: List[OperatingPoint] = field(default_factory=list)
    inter_class_overhead_j: float = 0.0
    static_power_w: float = 0.0
    branch_not_taken_cycles: int = 1
    kind: CoreKind = CoreKind.CPU
    predictable: bool = True

    def __post_init__(self):
        _validate_table(f"{self.name} cycle", self.cycle_table)
        _validate_table(f"{self.name} energy", self.energy_table)
        if not self.operating_points:
            self.operating_points = [self.nominal_opp]
        if self.nominal_opp not in self.operating_points:
            self.operating_points = list(self.operating_points) + [self.nominal_opp]
        self.operating_points = sorted(set(self.operating_points),
                                       key=lambda opp: opp.frequency_hz)
        if self.inter_class_overhead_j < 0 or self.static_power_w < 0:
            raise PlatformError(f"core {self.name!r} has negative power parameters")

    # -- timing -------------------------------------------------------------
    def cycles_for(self, instruction_class: str, taken: bool = True) -> int:
        """Base cycle cost of one instruction of ``instruction_class``."""
        if instruction_class not in self.cycle_table:
            raise PlatformError(
                f"core {self.name!r} has no timing for class {instruction_class!r}")
        if instruction_class == "branch" and not taken:
            return self.branch_not_taken_cycles
        return self.cycle_table[instruction_class]

    def max_cycles_for(self, instruction_class: str) -> int:
        """Worst-case cycle cost (used by the WCET analyser)."""
        return max(self.cycles_for(instruction_class, taken=True),
                   self.cycles_for(instruction_class, taken=False))

    def time_for_cycles(self, cycles: float,
                        opp: Optional[OperatingPoint] = None) -> float:
        opp = opp or self.nominal_opp
        return float(cycles) / opp.frequency_hz

    # -- energy ---------------------------------------------------------------
    def dynamic_energy_for(self, instruction_class: str,
                           opp: Optional[OperatingPoint] = None) -> float:
        """Dynamic energy of one instruction, in joules, at ``opp``."""
        if instruction_class not in self.energy_table:
            raise PlatformError(
                f"core {self.name!r} has no energy for class {instruction_class!r}")
        opp = opp or self.nominal_opp
        return self.energy_table[instruction_class] * opp.dynamic_scale(self.nominal_opp)

    def switching_overhead(self, previous_class: Optional[str],
                           current_class: str,
                           opp: Optional[OperatingPoint] = None) -> float:
        """Inter-instruction overhead energy when the class changes."""
        if previous_class is None or previous_class == current_class:
            return 0.0
        opp = opp or self.nominal_opp
        return self.inter_class_overhead_j * opp.dynamic_scale(self.nominal_opp)

    def static_power(self, opp: Optional[OperatingPoint] = None) -> float:
        opp = opp or self.nominal_opp
        return self.static_power_w * opp.static_power_scale(self.nominal_opp)

    def static_energy(self, time_s: float,
                      opp: Optional[OperatingPoint] = None) -> float:
        return self.static_power(opp) * time_s

    def opp_by_frequency(self, frequency_hz: float) -> OperatingPoint:
        for opp in self.operating_points:
            if abs(opp.frequency_hz - frequency_hz) < 1e-6:
                return opp
        raise PlatformError(
            f"core {self.name!r} has no operating point at {frequency_hz} Hz")


@dataclass
class ComplexCore:
    """Coarse model of a complex core cluster or GPU.

    Following the component-based energy modelling of Seewald et al. (used by
    PowProfiler), a complex processing element is characterised by its
    sustained throughput in abstract *work units per second* and by active and
    idle power draws, each per operating point.
    """

    name: str
    kind: CoreKind
    nominal_opp: OperatingPoint
    throughput_units_per_s: float
    active_power_w: float
    idle_power_w: float
    operating_points: List[OperatingPoint] = field(default_factory=list)
    #: Per-kernel speed-up factors relative to the generic throughput
    #: (e.g. convolutions run disproportionally fast on a GPU).
    kernel_affinity: Dict[str, float] = field(default_factory=dict)
    predictable: bool = False

    def __post_init__(self):
        if self.throughput_units_per_s <= 0:
            raise PlatformError(f"core {self.name!r} needs positive throughput")
        if self.active_power_w < self.idle_power_w:
            raise PlatformError(
                f"core {self.name!r}: active power below idle power")
        if not self.operating_points:
            self.operating_points = [self.nominal_opp]
        if self.nominal_opp not in self.operating_points:
            self.operating_points = list(self.operating_points) + [self.nominal_opp]
        self.operating_points = sorted(set(self.operating_points),
                                       key=lambda opp: opp.frequency_hz)

    def _freq_scale(self, opp: Optional[OperatingPoint]) -> float:
        opp = opp or self.nominal_opp
        return opp.frequency_hz / self.nominal_opp.frequency_hz

    def execution_time(self, work_units: float, kernel: Optional[str] = None,
                       opp: Optional[OperatingPoint] = None) -> float:
        """Seconds needed to execute ``work_units`` of ``kernel``."""
        if work_units < 0:
            raise ValueError("work units must be non-negative")
        affinity = self.kernel_affinity.get(kernel, 1.0) if kernel else 1.0
        throughput = self.throughput_units_per_s * affinity * self._freq_scale(opp)
        return work_units / throughput

    def active_power(self, opp: Optional[OperatingPoint] = None) -> float:
        opp = opp or self.nominal_opp
        scale = self._freq_scale(opp) * opp.dynamic_scale(self.nominal_opp)
        dynamic = (self.active_power_w - self.idle_power_w) * scale
        return self.idle_power(opp) + dynamic

    def idle_power(self, opp: Optional[OperatingPoint] = None) -> float:
        opp = opp or self.nominal_opp
        return self.idle_power_w * opp.static_power_scale(self.nominal_opp)

    def execution_energy(self, work_units: float, kernel: Optional[str] = None,
                         opp: Optional[OperatingPoint] = None) -> float:
        return self.active_power(opp) * self.execution_time(work_units, kernel, opp)


@dataclass
class Accelerator:
    """A fixed-function co-processor with a per-kernel cost table.

    ``kernels`` maps a kernel name to ``(seconds, joules)`` per unit of work;
    ``offload_overhead_s`` / ``offload_overhead_j`` model the cost of handing
    data over (e.g. SPI transfer to the camera pill's FPGA).
    """

    name: str
    kernels: Dict[str, Tuple[float, float]]
    offload_overhead_s: float = 0.0
    offload_overhead_j: float = 0.0
    idle_power_w: float = 0.0
    kind: CoreKind = CoreKind.FPGA

    def supports(self, kernel: str) -> bool:
        return kernel in self.kernels

    def execution_time(self, kernel: str, work_units: float = 1.0) -> float:
        if kernel not in self.kernels:
            raise PlatformError(f"accelerator {self.name!r} lacks kernel {kernel!r}")
        return self.offload_overhead_s + self.kernels[kernel][0] * work_units

    def execution_energy(self, kernel: str, work_units: float = 1.0) -> float:
        if kernel not in self.kernels:
            raise PlatformError(f"accelerator {self.name!r} lacks kernel {kernel!r}")
        return self.offload_overhead_j + self.kernels[kernel][1] * work_units
