"""Board-level platform description.

A :class:`Platform` groups the processing elements, memory system and
(optionally) battery of one of the boards targeted by the TeamPlay use cases.
The toolchain selects between the predictable and complex workflows based on
:attr:`Platform.predictable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import PlatformError
from repro.hw.battery import Battery
from repro.hw.core import Accelerator, ComplexCore, Core
from repro.hw.memory import MemorySystem

ProcessingElement = Union[Core, ComplexCore, Accelerator]


@dataclass
class Platform:
    """A target board: processing elements + memory + optional battery."""

    name: str
    cores: List[ProcessingElement]
    memory: MemorySystem = field(default_factory=MemorySystem)
    battery: Optional[Battery] = None
    description: str = ""

    def __post_init__(self):
        if not self.cores:
            raise PlatformError(f"platform {self.name!r} needs at least one core")
        names = [core.name for core in self.cores]
        if len(set(names)) != len(names):
            raise PlatformError(f"platform {self.name!r} has duplicate core names")

    # -- lookup ---------------------------------------------------------------
    def core(self, name: str) -> ProcessingElement:
        for core in self.cores:
            if core.name == name:
                return core
        raise PlatformError(f"platform {self.name!r} has no core named {name!r}")

    @property
    def core_names(self) -> List[str]:
        return [core.name for core in self.cores]

    @property
    def predictable_cores(self) -> List[Core]:
        return [core for core in self.cores if isinstance(core, Core)]

    @property
    def complex_cores(self) -> List[ComplexCore]:
        return [core for core in self.cores if isinstance(core, ComplexCore)]

    @property
    def accelerators(self) -> List[Accelerator]:
        return [core for core in self.cores if isinstance(core, Accelerator)]

    @property
    def schedulable_cores(self) -> List[ProcessingElement]:
        """Cores the coordination layer can map tasks onto (not accelerators)."""
        return [core for core in self.cores if not isinstance(core, Accelerator)]

    @property
    def predictable(self) -> bool:
        """True when *all* schedulable cores admit static timing analysis."""
        schedulable = self.schedulable_cores
        return bool(schedulable) and all(isinstance(core, Core) for core in schedulable)

    @property
    def default_core(self) -> ProcessingElement:
        return self.schedulable_cores[0] if self.schedulable_cores else self.cores[0]

    # -- power ----------------------------------------------------------------
    def idle_power_w(self) -> float:
        """Board idle power: leakage of every core plus accelerator idle draw."""
        total = 0.0
        for core in self.cores:
            if isinstance(core, Core):
                total += core.static_power()
            elif isinstance(core, ComplexCore):
                total += core.idle_power()
            else:
                total += core.idle_power_w
        return total

    def summary(self) -> Dict[str, object]:
        """A plain-data description used in reports and glue-code headers."""
        return {
            "name": self.name,
            "predictable": self.predictable,
            "cores": [
                {
                    "name": core.name,
                    "kind": getattr(core, "kind").value
                    if hasattr(core, "kind") else "cpu",
                    "model": type(core).__name__,
                }
                for core in self.cores
            ],
            "has_battery": self.battery is not None,
            "scratchpad_bytes": self.memory.scratchpad_size(),
        }
