"""Battery model used by the UAV and camera-pill use cases.

The coordination layer's battery-aware mode (Seewald et al., IROS'22) adapts
the software configuration to the remaining charge; the flight-time
computations in the SAR benchmark need a simple but stateful battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Battery:
    """An ideal energy reservoir with a usable-capacity derating."""

    capacity_wh: float
    usable_fraction: float = 0.85
    consumed_j: float = field(default=0.0, init=False)

    def __post_init__(self):
        if self.capacity_wh <= 0:
            raise ValueError("battery capacity must be positive")
        if not 0 < self.usable_fraction <= 1:
            raise ValueError("usable fraction must be in (0, 1]")

    # -- capacity ------------------------------------------------------------
    @property
    def capacity_j(self) -> float:
        return self.capacity_wh * 3600.0

    @property
    def usable_capacity_j(self) -> float:
        return self.capacity_j * self.usable_fraction

    @property
    def remaining_j(self) -> float:
        return max(self.usable_capacity_j - self.consumed_j, 0.0)

    @property
    def state_of_charge(self) -> float:
        """Remaining usable charge as a fraction in [0, 1]."""
        return self.remaining_j / self.usable_capacity_j if self.usable_capacity_j else 0.0

    @property
    def depleted(self) -> bool:
        return self.remaining_j <= 0.0

    # -- operations ----------------------------------------------------------
    def discharge(self, energy_j: float) -> float:
        """Drain ``energy_j`` joules; returns the energy actually drawn."""
        if energy_j < 0:
            raise ValueError("cannot discharge a negative amount of energy")
        drawn = min(energy_j, self.remaining_j)
        self.consumed_j += drawn
        return drawn

    def endurance_s(self, power_w: float) -> float:
        """Time until depletion at a constant ``power_w`` draw."""
        if power_w <= 0:
            raise ValueError("power draw must be positive")
        return self.remaining_j / power_w

    def reset(self) -> None:
        self.consumed_j = 0.0
