"""The multi-criteria optimising compiler (WCC stand-in).

The compiler applies source- and IR-level optimisations under the control of
a :class:`~repro.compiler.config.CompilerConfig`, evaluates each candidate
configuration with the static WCET, energy and (optionally) security
analysers, and searches the configuration space with multi-objective
optimisers — the Flower Pollination Algorithm used by WCC (Jadhav & Falk,
SCOPES'19) and an NSGA-II baseline — to produce a Pareto front of compiled
variants trading execution time, energy and security.

The compile path itself is declarative: :mod:`repro.compiler.pipeline`
registers every pass (parse → AST → lower → IR → backend → analysis) with a
:class:`~repro.compiler.pipeline.PassManager` that derives the engine's
stage-cache keys from the pass list and reports per-pass wall-time/
invocation counters.  All evaluation is served by the batched engine in
:mod:`repro.compiler.engine`: staged variant/lowering/analysis caches plus
numpy-vectorised Pareto machinery shared by both optimisers.
"""

from repro.compiler.config import CompilerConfig
from repro.compiler.evaluate import Variant, evaluate_config
from repro.compiler.driver import MultiCriteriaCompiler, ParetoFront
from repro.compiler.engine import (
    AnalysisCache,
    BatchEvaluator,
    EvaluationEngine,
    VariantCache,
)
from repro.compiler.fpa import FlowerPollinationOptimizer
from repro.compiler.nsga2 import Nsga2Optimizer
from repro.compiler.pipeline import CompilationPipeline, Pass, PassManager

__all__ = [
    "AnalysisCache",
    "BatchEvaluator",
    "CompilationPipeline",
    "CompilerConfig",
    "EvaluationEngine",
    "FlowerPollinationOptimizer",
    "MultiCriteriaCompiler",
    "Nsga2Optimizer",
    "ParetoFront",
    "Pass",
    "PassManager",
    "Variant",
    "VariantCache",
    "evaluate_config",
]
