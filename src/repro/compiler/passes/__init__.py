"""Optimisation passes of the multi-criteria compiler.

* :mod:`repro.compiler.passes.ast_passes` — source-level passes operating on
  the TeamPlay-C AST (constant folding, full loop unrolling, inlining of
  simple functions),
* :mod:`repro.compiler.passes.ir_passes` — IR-level passes (dead-code
  elimination, strength reduction / peephole simplification),
* :mod:`repro.compiler.passes.spm` — scratchpad-memory allocation of hot
  functions.
"""

from repro.compiler.passes.ast_passes import (
    fold_constants,
    inline_simple_functions,
    unroll_loops,
)
from repro.compiler.passes.ir_passes import (
    eliminate_dead_code,
    strength_reduce,
)
from repro.compiler.passes.spm import allocate_scratchpad

__all__ = [
    "allocate_scratchpad",
    "eliminate_dead_code",
    "fold_constants",
    "inline_simple_functions",
    "strength_reduce",
    "unroll_loops",
]
