"""Scratchpad-memory (SPM) allocation of hot code.

Predictable MCU platforms fetch code from flash with wait states; moving the
hottest functions into a zero-wait-state scratchpad reduces both the WCET and
the energy of every fetched instruction.  The allocation is a greedy knapsack
over the functions, ranked by estimated benefit density (worst-case fetched
instructions per byte of code).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hw.platform import Platform
from repro.ir.cfg import Function, Program
from repro.ir.instructions import Instr
from repro.wcet.structural import StructuralCostEngine

#: Assumed encoded size of one IR instruction, in bytes (Thumb-like).
INSTRUCTION_BYTES = 4


@dataclass
class SpmAllocation:
    """Outcome of the allocation pass."""

    placed_functions: List[str]
    used_bytes: int
    capacity_bytes: int

    @property
    def utilisation(self) -> float:
        return self.used_bytes / self.capacity_bytes if self.capacity_bytes else 0.0


def _worst_case_fetches(program: Program) -> Dict[str, float]:
    """Worst-case number of instruction fetches per single invocation."""

    def one_per_instruction(_function: Function, _instr: Instr) -> float:
        return 1.0

    engine = StructuralCostEngine(program, one_per_instruction)
    fetches: Dict[str, float] = {}
    for name in program.functions:
        try:
            fetches[name] = engine.function_cost(name)
        except Exception:
            # Functions without loop bounds cannot be ranked; they simply are
            # not considered for placement.
            continue
    return fetches


def allocate_scratchpad(program: Program, platform: Platform) -> SpmAllocation:
    """Place the most profitable functions into the platform's scratchpad.

    Functions already placed (``code_region`` set) are left untouched.  When
    the platform has no scratchpad the pass is a no-op.
    """
    memory = platform.memory
    if not memory.has_scratchpad:
        return SpmAllocation(placed_functions=[], used_bytes=0, capacity_bytes=0)
    capacity = memory.scratchpad_size()
    wait_saving = (memory.fetch_wait_states(memory.code_region)
                   - memory.fetch_wait_states(memory.scratchpad_region))
    if wait_saving <= 0:
        return SpmAllocation(placed_functions=[], used_bytes=0,
                             capacity_bytes=capacity)

    fetches = _worst_case_fetches(program)
    candidates = []
    for name, function in program.functions.items():
        if function.code_region is not None or name not in fetches:
            continue
        size = function.instruction_count * INSTRUCTION_BYTES
        if size == 0 or size > capacity:
            continue
        benefit = fetches[name] * wait_saving
        candidates.append((benefit / size, benefit, size, name))
    candidates.sort(reverse=True)

    placed: List[str] = []
    used = 0
    for _density, _benefit, size, name in candidates:
        if used + size > capacity:
            continue
        program.functions[name].code_region = memory.scratchpad_region
        placed.append(name)
        used += size
    return SpmAllocation(placed_functions=placed, used_bytes=used,
                         capacity_bytes=capacity)
