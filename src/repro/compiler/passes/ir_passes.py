"""IR-level optimisation passes.

These passes operate on lowered :class:`~repro.ir.cfg.Program` objects in
place.  They only rewrite instructions *within* basic blocks, so the region
tree (which references blocks by label) remains valid.

All passes are copy-on-write at instruction granularity: they rebuild
instruction lists and replace rewritten instructions with fresh objects,
never mutating an :class:`~repro.ir.instructions.Instr` in place — required
because the evaluation engine's staged caches hand out instruction-sharing
program clones (``Program.clone(share_instructions=True)``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.cfg import Program
from repro.ir.instructions import COMMUTATIVE, Imm, Instr, Opcode, Reg

#: Opcodes that must never be removed even if their destination is unused.
_SIDE_EFFECTS = {Opcode.STORE, Opcode.CALL, Opcode.RET, Opcode.BR, Opcode.JMP}


# ---------------------------------------------------------------------------
# Dead-code elimination
# ---------------------------------------------------------------------------
def eliminate_dead_code(program: Program) -> int:
    """Remove instructions whose results are never read.

    Returns the number of instructions removed (across all functions).  The
    pass iterates to a fixed point because removing one dead instruction can
    make its operands' producers dead too.  Read counts are maintained
    incrementally across iterations (same fixed point as recomputing the
    used-register set from scratch, without re-walking every operand).
    """
    removed_total = 0
    for function in program.functions.values():
        reads: Dict[str, int] = {}
        for instr in function.iter_instructions():
            for reg in instr.reads():
                reads[reg.name] = reads.get(reg.name, 0) + 1
        while True:
            removed = 0
            for block in function.blocks.values():
                kept = []
                for instr in block.instrs:
                    dst = instr.dst
                    if (dst is not None
                            and instr.opcode not in _SIDE_EFFECTS
                            and not reads.get(dst.name)):
                        removed += 1
                        for reg in instr.reads():
                            reads[reg.name] -= 1
                    else:
                        kept.append(instr)
                block.instrs = kept
            removed_total += removed
            if removed == 0:
                break
    return removed_total


# ---------------------------------------------------------------------------
# Strength reduction / peephole simplification
# ---------------------------------------------------------------------------
def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


#: Opcodes _reduce_instr can do anything with (cheap pre-filter).
_REDUCIBLE_OPS = frozenset((Opcode.MUL, Opcode.ADD, Opcode.SUB, Opcode.OR,
                            Opcode.XOR, Opcode.SHL, Opcode.SHR))


def _reduce_instr(instr: Instr) -> bool:
    """Simplify one instruction in place; True when something changed."""
    op = instr.opcode
    if op not in (Opcode.MUL, Opcode.ADD, Opcode.SUB, Opcode.OR, Opcode.XOR,
                  Opcode.SHL, Opcode.SHR):
        return False
    if len(instr.srcs) != 2:
        return False
    lhs, rhs = instr.srcs

    # Normalise "imm op reg" to "reg op imm" for commutative operations.
    if op in (Opcode.MUL, Opcode.ADD, Opcode.OR, Opcode.XOR) \
            and isinstance(lhs, Imm) and isinstance(rhs, Reg):
        lhs, rhs = rhs, lhs
        instr.srcs = (lhs, rhs)

    if not isinstance(rhs, Imm):
        return False

    if op is Opcode.MUL:
        if rhs.value == 1:
            instr.opcode = Opcode.MOV
            instr.srcs = (lhs,)
            return True
        if rhs.value == 0:
            instr.opcode = Opcode.MOV
            instr.srcs = (Imm(0),)
            return True
        if _is_power_of_two(rhs.value):
            instr.opcode = Opcode.SHL
            instr.srcs = (lhs, Imm(rhs.value.bit_length() - 1))
            return True
        return False

    if rhs.value == 0 and op in (Opcode.ADD, Opcode.SUB, Opcode.OR, Opcode.XOR,
                                 Opcode.SHL, Opcode.SHR):
        instr.opcode = Opcode.MOV
        instr.srcs = (lhs,)
        return True
    return False


# ---------------------------------------------------------------------------
# Common-subexpression elimination (block-local)
# ---------------------------------------------------------------------------
#: Opcodes whose result depends only on their register/immediate operands.
#: LOAD is excluded (its value depends on memory, which STOREs in the same
#: block may change); MOV is excluded (replacing a copy with another copy
#: gains nothing — copy propagation is a different pass).
_PURE_OPS = frozenset((
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
    Opcode.NEG, Opcode.NOT, Opcode.LNOT,
    Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
    Opcode.CMPGT, Opcode.CMPGE, Opcode.SELECT,
))

#: Commutative opcodes, as a set for O(1) membership in the CSE key builder.
_COMMUTATIVE_OPS = frozenset(COMMUTATIVE)


def _expression_key(instr: Instr) -> Tuple:
    """Value-equality key of a pure instruction's right-hand side.

    Commutative two-operand expressions are canonicalised (sorted operand
    order) so ``a + b`` and ``b + a`` share one availability slot.
    """
    srcs = instr.srcs
    if instr.opcode in _COMMUTATIVE_OPS and len(srcs) == 2:
        a, b = srcs
        if repr(b) < repr(a):
            srcs = (b, a)
    return (instr.opcode, srcs)


def eliminate_common_subexpressions(program: Program) -> int:
    """Replace re-computed pure expressions with register copies.

    Block-local available-expression analysis: within one basic block, the
    second and later computations of an identical pure expression (same
    opcode, same operands, commutative operands canonicalised) are replaced
    by a ``MOV`` from the register still holding the first result.  Returns
    the number of replacements (across all functions).

    The rewrite never removes an instruction, it *downgrades* one — a
    ``mul``/``div``-class recomputation becomes an ``alu``-class copy — so
    worst-case cycle (and energy) bounds drop while code size is unchanged;
    a following peephole pass removes the self-copies this can leave behind.
    Availability is invalidated conservatively on every register
    redefinition: an expression is dropped both when one of its operands and
    when its holding register is overwritten, and an instruction whose
    destination feeds its own right-hand side (``i = i + 1``) is never
    recorded.
    """
    replaced_total = 0
    for function in program.functions.values():
        for block in function.blocks.values():
            available: Dict[Tuple, Reg] = {}
            #: register name -> keys whose operands or holder mention it
            mentions: Dict[str, list] = {}
            instrs = block.instrs
            for index, instr in enumerate(instrs):
                dst = instr.dst
                recorded_key = None
                if (instr.opcode in _PURE_OPS and dst is not None
                        and instr.srcs):
                    key = _expression_key(instr)
                    holder = available.get(key)
                    if holder is not None:
                        replacement = Instr(Opcode.MOV, dst=dst,
                                            srcs=(holder,))
                        instrs[index] = replacement
                        instr = replacement
                        replaced_total += 1
                    elif dst.name not in (reg.name for reg in instr.reads()):
                        recorded_key = key
                if dst is None:
                    continue
                # The write invalidates every expression reading or held in
                # ``dst`` — including, possibly, the one we just matched.
                for key in mentions.pop(dst.name, ()):
                    available.pop(key, None)
                if recorded_key is not None:
                    available[recorded_key] = dst
                    for reg in instr.reads():
                        mentions.setdefault(reg.name, []).append(recorded_key)
                    mentions.setdefault(dst.name, []).append(recorded_key)
    return replaced_total


def strength_reduce(program: Program) -> int:
    """Apply peephole strength reduction; returns the number of rewrites.

    Copy-on-write at instruction granularity: rewritten instructions are
    replaced by modified clones instead of being mutated in place, so
    programs produced by instruction-sharing clones (see
    ``Program.clone(share_instructions=True)``) never corrupt each other.
    """
    rewrites = 0
    for function in program.functions.values():
        for block in function.blocks.values():
            instrs = block.instrs
            for index, instr in enumerate(instrs):
                if instr.opcode not in _REDUCIBLE_OPS or len(instr.srcs) != 2:
                    continue
                candidate = instr.clone()
                if _reduce_instr(candidate):
                    instrs[index] = candidate
                    rewrites += 1
                elif candidate.srcs != instr.srcs:
                    # Commutative normalisation only ("imm op reg" swapped):
                    # keep it, exactly as the in-place pass did.
                    instrs[index] = candidate
    return rewrites


# ---------------------------------------------------------------------------
# Peephole simplification (algebraic identities, IR-level constant folding)
# ---------------------------------------------------------------------------
_INT_MASK = 0xFFFFFFFF
_INT_SIGN = 0x80000000


def _wrap32(value: int) -> int:
    """Wrap to signed 32-bit two's complement (the simulator's semantics)."""
    value &= _INT_MASK
    if value & _INT_SIGN:
        value -= 1 << 32
    return value


def _c_div32(lhs: int, rhs: int) -> int:
    quotient = abs(lhs) // abs(rhs)
    return -quotient if (lhs < 0) != (rhs < 0) else quotient


def _fold_binary(opcode: Opcode, lhs: int, rhs: int) -> Optional[int]:
    """Constant-fold one binary operation, mirroring the simulator exactly
    (32-bit wrap-around, C-style truncating division, shift counts mod 32).
    Returns ``None`` when the operation cannot be folded (division by zero
    must keep trapping at run time)."""
    # The simulator wraps operands on read, so fold from the wrapped values.
    lhs, rhs = _wrap32(lhs), _wrap32(rhs)
    if opcode is Opcode.ADD:
        return _wrap32(lhs + rhs)
    if opcode is Opcode.SUB:
        return _wrap32(lhs - rhs)
    if opcode is Opcode.MUL:
        return _wrap32(lhs * rhs)
    if opcode in (Opcode.DIV, Opcode.MOD):
        if rhs == 0:
            return None
        quotient = _c_div32(lhs, rhs)
        return _wrap32(quotient if opcode is Opcode.DIV
                       else lhs - quotient * rhs)
    if opcode is Opcode.AND:
        return _wrap32(lhs & rhs)
    if opcode is Opcode.OR:
        return _wrap32(lhs | rhs)
    if opcode is Opcode.XOR:
        return _wrap32(lhs ^ rhs)
    if opcode is Opcode.SHL:
        return _wrap32((lhs & _INT_MASK) << (rhs & 31))
    if opcode is Opcode.SHR:
        return _wrap32((lhs & _INT_MASK) >> (rhs & 31))
    if opcode is Opcode.CMPEQ:
        return int(lhs == rhs)
    if opcode is Opcode.CMPNE:
        return int(lhs != rhs)
    if opcode is Opcode.CMPLT:
        return int(lhs < rhs)
    if opcode is Opcode.CMPLE:
        return int(lhs <= rhs)
    if opcode is Opcode.CMPGT:
        return int(lhs > rhs)
    if opcode is Opcode.CMPGE:
        return int(lhs >= rhs)
    return None


#: Same-register identities: ``op x, x`` folds without knowing ``x``.
_SAME_REG_ZERO = frozenset((Opcode.SUB, Opcode.XOR, Opcode.CMPNE,
                            Opcode.CMPLT, Opcode.CMPGT))
_SAME_REG_ONE = frozenset((Opcode.CMPEQ, Opcode.CMPLE, Opcode.CMPGE))
_SAME_REG_COPY = frozenset((Opcode.AND, Opcode.OR))


def _peephole_rewrite(instr: Instr) -> Optional[Instr]:
    """The simplified replacement for one instruction, or ``None``.

    Every rewrite returns a *fresh* instruction (copy-on-write contract);
    the input is never mutated.
    """
    opcode, dst, srcs = instr.opcode, instr.dst, instr.srcs
    if dst is None:
        return None

    if len(srcs) == 2:
        lhs, rhs = srcs
        if isinstance(lhs, Imm) and isinstance(rhs, Imm):
            folded = _fold_binary(opcode, lhs.value, rhs.value)
            if folded is not None:
                return Instr(Opcode.MOV, dst=dst, srcs=(Imm(folded),))
        if isinstance(lhs, Reg) and isinstance(rhs, Reg) \
                and lhs.name == rhs.name:
            if opcode in _SAME_REG_ZERO:
                return Instr(Opcode.MOV, dst=dst, srcs=(Imm(0),))
            if opcode in _SAME_REG_ONE:
                return Instr(Opcode.MOV, dst=dst, srcs=(Imm(1),))
            if opcode in _SAME_REG_COPY:
                return Instr(Opcode.MOV, dst=dst, srcs=(lhs,))
        return None

    if len(srcs) == 1 and isinstance(srcs[0], Imm):
        value = _wrap32(srcs[0].value)
        if opcode is Opcode.NEG:
            return Instr(Opcode.MOV, dst=dst, srcs=(Imm(_wrap32(-value)),))
        if opcode is Opcode.NOT:
            return Instr(Opcode.MOV, dst=dst, srcs=(Imm(_wrap32(~value)),))
        if opcode is Opcode.LNOT:
            return Instr(Opcode.MOV, dst=dst,
                         srcs=(Imm(0 if value != 0 else 1),))
        return None

    if opcode is Opcode.SELECT and len(srcs) == 3:
        cond, if_true, if_false = srcs
        if isinstance(cond, Imm):
            return Instr(Opcode.MOV, dst=dst,
                         srcs=(if_true if _wrap32(cond.value) != 0
                               else if_false,))
        if if_true == if_false:
            return Instr(Opcode.MOV, dst=dst, srcs=(if_true,))
    return None


def peephole_optimize(program: Program) -> int:
    """Apply local algebraic simplifications; returns the rewrite count.

    Three families of cleanups, each a single-instruction rewrite:

    * *constant folding at the IR level* — operations whose operands are all
      immediates collapse to a ``MOV`` of the folded value (32-bit wrapped,
      bit-exact with the simulator; division by zero is left to trap),
    * *algebraic identities* — ``x - x``, ``x ^ x``, ``x & x``, ``x | x``,
      same-register comparisons, ``NEG``/``NOT``/``LNOT`` of immediates and
      ``SELECT`` with a constant condition or identical arms,
    * *self-copy removal* — ``mov r, r`` (e.g. left behind when CSE
      re-materialises a value into the register that already holds it) is
      deleted outright, shrinking code size.

    Deliberately *not* removed: ``NOP`` padding (a later timing-equalisation
    pass may count on it) and anything spanning more than one instruction.
    Copy-on-write at instruction granularity, like every IR pass here.
    """
    rewrites = 0
    for function in program.functions.values():
        for block in function.blocks.values():
            kept = []
            changed = False
            for instr in block.instrs:
                if (instr.opcode is Opcode.MOV and instr.dst is not None
                        and len(instr.srcs) == 1
                        and isinstance(instr.srcs[0], Reg)
                        and instr.srcs[0].name == instr.dst.name):
                    rewrites += 1
                    changed = True
                    continue
                replacement = _peephole_rewrite(instr)
                if replacement is not None:
                    rewrites += 1
                    changed = True
                    kept.append(replacement)
                else:
                    kept.append(instr)
            if changed:
                block.instrs = kept
    return rewrites
