"""IR-level optimisation passes.

These passes operate on lowered :class:`~repro.ir.cfg.Program` objects in
place.  They only rewrite instructions *within* basic blocks, so the region
tree (which references blocks by label) remains valid.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.cfg import Program
from repro.ir.instructions import Imm, Instr, Opcode, Reg

#: Opcodes that must never be removed even if their destination is unused.
_SIDE_EFFECTS = {Opcode.STORE, Opcode.CALL, Opcode.RET, Opcode.BR, Opcode.JMP}


# ---------------------------------------------------------------------------
# Dead-code elimination
# ---------------------------------------------------------------------------
def eliminate_dead_code(program: Program) -> int:
    """Remove instructions whose results are never read.

    Returns the number of instructions removed (across all functions).  The
    pass iterates to a fixed point because removing one dead instruction can
    make its operands' producers dead too.  Read counts are maintained
    incrementally across iterations (same fixed point as recomputing the
    used-register set from scratch, without re-walking every operand).
    """
    removed_total = 0
    for function in program.functions.values():
        reads: Dict[str, int] = {}
        for instr in function.iter_instructions():
            for reg in instr.reads():
                reads[reg.name] = reads.get(reg.name, 0) + 1
        while True:
            removed = 0
            for block in function.blocks.values():
                kept = []
                for instr in block.instrs:
                    dst = instr.dst
                    if (dst is not None
                            and instr.opcode not in _SIDE_EFFECTS
                            and not reads.get(dst.name)):
                        removed += 1
                        for reg in instr.reads():
                            reads[reg.name] -= 1
                    else:
                        kept.append(instr)
                block.instrs = kept
            removed_total += removed
            if removed == 0:
                break
    return removed_total


# ---------------------------------------------------------------------------
# Strength reduction / peephole simplification
# ---------------------------------------------------------------------------
def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


#: Opcodes _reduce_instr can do anything with (cheap pre-filter).
_REDUCIBLE_OPS = frozenset((Opcode.MUL, Opcode.ADD, Opcode.SUB, Opcode.OR,
                            Opcode.XOR, Opcode.SHL, Opcode.SHR))


def _reduce_instr(instr: Instr) -> bool:
    """Simplify one instruction in place; True when something changed."""
    op = instr.opcode
    if op not in (Opcode.MUL, Opcode.ADD, Opcode.SUB, Opcode.OR, Opcode.XOR,
                  Opcode.SHL, Opcode.SHR):
        return False
    if len(instr.srcs) != 2:
        return False
    lhs, rhs = instr.srcs

    # Normalise "imm op reg" to "reg op imm" for commutative operations.
    if op in (Opcode.MUL, Opcode.ADD, Opcode.OR, Opcode.XOR) \
            and isinstance(lhs, Imm) and isinstance(rhs, Reg):
        lhs, rhs = rhs, lhs
        instr.srcs = (lhs, rhs)

    if not isinstance(rhs, Imm):
        return False

    if op is Opcode.MUL:
        if rhs.value == 1:
            instr.opcode = Opcode.MOV
            instr.srcs = (lhs,)
            return True
        if rhs.value == 0:
            instr.opcode = Opcode.MOV
            instr.srcs = (Imm(0),)
            return True
        if _is_power_of_two(rhs.value):
            instr.opcode = Opcode.SHL
            instr.srcs = (lhs, Imm(rhs.value.bit_length() - 1))
            return True
        return False

    if rhs.value == 0 and op in (Opcode.ADD, Opcode.SUB, Opcode.OR, Opcode.XOR,
                                 Opcode.SHL, Opcode.SHR):
        instr.opcode = Opcode.MOV
        instr.srcs = (lhs,)
        return True
    return False


def strength_reduce(program: Program) -> int:
    """Apply peephole strength reduction; returns the number of rewrites.

    Copy-on-write at instruction granularity: rewritten instructions are
    replaced by modified clones instead of being mutated in place, so
    programs produced by instruction-sharing clones (see
    ``Program.clone(share_instructions=True)``) never corrupt each other.
    """
    rewrites = 0
    for function in program.functions.values():
        for block in function.blocks.values():
            instrs = block.instrs
            for index, instr in enumerate(instrs):
                if instr.opcode not in _REDUCIBLE_OPS or len(instr.srcs) != 2:
                    continue
                candidate = instr.clone()
                if _reduce_instr(candidate):
                    instrs[index] = candidate
                    rewrites += 1
                elif candidate.srcs != instr.srcs:
                    # Commutative normalisation only ("imm op reg" swapped):
                    # keep it, exactly as the in-place pass did.
                    instrs[index] = candidate
    return rewrites
