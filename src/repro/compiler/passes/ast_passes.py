"""Source-level (AST) optimisation passes.

All passes operate on a :class:`~repro.frontend.ast_nodes.SourceModule`
*in place* and return a small integer describing how much work they did, so
the driver can report which passes were effective for a configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.frontend import ast_nodes as ast
from repro.wcet.loopbounds import infer_for_bound

_FOLDABLE_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: _c_div(a, b),
    "%": lambda a, b: _c_mod(a, b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 31),
    ">>": lambda a, b: (a & 0xFFFFFFFF) >> (b & 31),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError("constant division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _c_mod(a: int, b: int) -> int:
    return a - _c_div(a, b) * b


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------
def _fold_expr(expr: ast.Expr, counter: List[int]) -> ast.Expr:
    if isinstance(expr, (ast.Num, ast.Var)):
        return expr
    if isinstance(expr, ast.Index):
        expr.index = _fold_expr(expr.index, counter)
        return expr
    if isinstance(expr, ast.Call):
        expr.args = [_fold_expr(arg, counter) for arg in expr.args]
        return expr
    if isinstance(expr, ast.Unary):
        expr.operand = _fold_expr(expr.operand, counter)
        if isinstance(expr.operand, ast.Num):
            value = expr.operand.value
            counter[0] += 1
            if expr.op == "-":
                return ast.Num(-value, expr.line)
            if expr.op == "~":
                return ast.Num(~value, expr.line)
            if expr.op == "!":
                return ast.Num(int(value == 0), expr.line)
        return expr
    if isinstance(expr, ast.Binary):
        expr.lhs = _fold_expr(expr.lhs, counter)
        expr.rhs = _fold_expr(expr.rhs, counter)
        if isinstance(expr.lhs, ast.Num) and isinstance(expr.rhs, ast.Num):
            try:
                value = _FOLDABLE_BINARY[expr.op](expr.lhs.value, expr.rhs.value)
            except ZeroDivisionError:
                return expr
            counter[0] += 1
            return ast.Num(value, expr.line)
        # Algebraic identities with a constant operand.
        if isinstance(expr.rhs, ast.Num):
            if expr.op in ("+", "-", "|", "^", "<<", ">>") and expr.rhs.value == 0:
                counter[0] += 1
                return expr.lhs
            if expr.op == "*" and expr.rhs.value == 1:
                counter[0] += 1
                return expr.lhs
            if expr.op == "*" and expr.rhs.value == 0:
                counter[0] += 1
                return ast.Num(0, expr.line)
            if expr.op == "/" and expr.rhs.value == 1:
                counter[0] += 1
                return expr.lhs
        if isinstance(expr.lhs, ast.Num):
            if expr.op in ("+", "|", "^") and expr.lhs.value == 0:
                counter[0] += 1
                return expr.rhs
            if expr.op == "*" and expr.lhs.value == 1:
                counter[0] += 1
                return expr.rhs
            if expr.op == "*" and expr.lhs.value == 0:
                counter[0] += 1
                return ast.Num(0, expr.line)
        return expr
    raise TypeError(f"unknown expression {type(expr)!r}")  # pragma: no cover


def _fold_stmt(stmt: ast.Stmt, counter: List[int]) -> None:
    if isinstance(stmt, ast.VarDecl) and stmt.init is not None:
        stmt.init = _fold_expr(stmt.init, counter)
    elif isinstance(stmt, ast.Assign):
        stmt.value = _fold_expr(stmt.value, counter)
        if isinstance(stmt.target, ast.Index):
            stmt.target.index = _fold_expr(stmt.target.index, counter)
    elif isinstance(stmt, ast.If):
        stmt.cond = _fold_expr(stmt.cond, counter)
        for child in stmt.then_body + stmt.else_body:
            _fold_stmt(child, counter)
    elif isinstance(stmt, ast.While):
        stmt.cond = _fold_expr(stmt.cond, counter)
        for child in stmt.body:
            _fold_stmt(child, counter)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            _fold_stmt(stmt.init, counter)
        if stmt.cond is not None:
            stmt.cond = _fold_expr(stmt.cond, counter)
        if stmt.update is not None:
            _fold_stmt(stmt.update, counter)
        for child in stmt.body:
            _fold_stmt(child, counter)
    elif isinstance(stmt, ast.Return) and stmt.value is not None:
        stmt.value = _fold_expr(stmt.value, counter)
    elif isinstance(stmt, ast.ExprStmt):
        stmt.expr = _fold_expr(stmt.expr, counter)


def fold_constants(module: ast.SourceModule) -> int:
    """Fold constant sub-expressions; returns the number of folds performed."""
    counter = [0]
    for function in module.functions:
        for stmt in function.body:
            _fold_stmt(stmt, counter)
    return counter[0]


# ---------------------------------------------------------------------------
# Loop unrolling (full unroll of small counted loops)
# ---------------------------------------------------------------------------
def _unroll_body(body: List[ast.Stmt], limit: int, counter: List[int]) -> List[ast.Stmt]:
    result: List[ast.Stmt] = []
    for stmt in body:
        if isinstance(stmt, ast.If):
            stmt.then_body = _unroll_body(stmt.then_body, limit, counter)
            stmt.else_body = _unroll_body(stmt.else_body, limit, counter)
            result.append(stmt)
            continue
        if isinstance(stmt, ast.While):
            stmt.body = _unroll_body(stmt.body, limit, counter)
            result.append(stmt)
            continue
        if isinstance(stmt, ast.For):
            stmt.body = _unroll_body(stmt.body, limit, counter)
            bound = stmt.bound if stmt.bound is not None else infer_for_bound(stmt)
            static_bound = infer_for_bound(stmt)
            # Only fully unroll loops whose trip count is statically exact
            # (counted loops) and small enough.
            if static_bound is not None and static_bound == bound and 0 < bound <= limit:
                counter[0] += 1
                if stmt.init is not None:
                    result.append(stmt.init)
                for _ in range(bound):
                    result.extend(ast.clone_stmt(s) for s in stmt.body)
                    if stmt.update is not None:
                        result.append(ast.clone_stmt(stmt.update))
                continue
            result.append(stmt)
            continue
        result.append(stmt)
    return result


def unroll_loops(module: ast.SourceModule, limit: int) -> int:
    """Fully unroll counted loops with trip count ≤ ``limit``.

    Returns the number of loops unrolled.  ``limit`` of zero disables the
    pass.
    """
    if limit <= 0:
        return 0
    counter = [0]
    for function in module.functions:
        function.body = _unroll_body(function.body, limit, counter)
    return counter[0]


# ---------------------------------------------------------------------------
# Inlining of simple functions
# ---------------------------------------------------------------------------
def _simple_function_expression(function: ast.FunctionDef) -> Optional[ast.Expr]:
    """The return expression if the function body is a single return."""
    if len(function.body) != 1:
        return None
    stmt = function.body[0]
    if not isinstance(stmt, ast.Return) or stmt.value is None:
        return None
    # The expression must not call anything (avoids unbounded inlining) and
    # must only mention the function's own parameters.
    for node in ast.walk_expr(stmt.value):
        if isinstance(node, ast.Call):
            return None
        if isinstance(node, (ast.Var, ast.Index)):
            name = node.name
            if name not in function.params:
                return None
    return stmt.value


def _substitute(expr: ast.Expr, bindings: Dict[str, ast.Expr]) -> ast.Expr:
    if isinstance(expr, ast.Num):
        return ast.Num(expr.value, expr.line)
    if isinstance(expr, ast.Var):
        if expr.name in bindings:
            return ast.clone_expr(bindings[expr.name])
        return ast.Var(expr.name, expr.line)
    if isinstance(expr, ast.Index):
        return ast.Index(expr.name, _substitute(expr.index, bindings), expr.line)
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _substitute(expr.operand, bindings), expr.line)
    if isinstance(expr, ast.Binary):
        return ast.Binary(expr.op, _substitute(expr.lhs, bindings),
                          _substitute(expr.rhs, bindings), expr.line)
    if isinstance(expr, ast.Call):
        return ast.Call(expr.name, [_substitute(a, bindings) for a in expr.args],
                        expr.line)
    raise TypeError(f"unknown expression {type(expr)!r}")  # pragma: no cover


def _inline_expr(expr: ast.Expr, inlinable: Dict[str, ast.FunctionDef],
                 counter: List[int]) -> ast.Expr:
    if isinstance(expr, (ast.Num, ast.Var)):
        return expr
    if isinstance(expr, ast.Index):
        expr.index = _inline_expr(expr.index, inlinable, counter)
        return expr
    if isinstance(expr, ast.Unary):
        expr.operand = _inline_expr(expr.operand, inlinable, counter)
        return expr
    if isinstance(expr, ast.Binary):
        expr.lhs = _inline_expr(expr.lhs, inlinable, counter)
        expr.rhs = _inline_expr(expr.rhs, inlinable, counter)
        return expr
    if isinstance(expr, ast.Call):
        expr.args = [_inline_expr(arg, inlinable, counter) for arg in expr.args]
        callee = inlinable.get(expr.name)
        if callee is not None and len(expr.args) == len(callee.params):
            body_expr = _simple_function_expression(callee)
            if body_expr is not None:
                counter[0] += 1
                bindings = dict(zip(callee.params, expr.args))
                return _substitute(body_expr, bindings)
        return expr
    raise TypeError(f"unknown expression {type(expr)!r}")  # pragma: no cover


def inline_simple_functions(module: ast.SourceModule) -> int:
    """Inline calls to single-return-expression functions; returns call count."""
    inlinable = {fn.name: fn for fn in module.functions
                 if _simple_function_expression(fn) is not None}
    if not inlinable:
        return 0
    counter = [0]
    for function in module.functions:
        for stmt in ast.walk_stmts(function.body):
            if isinstance(stmt, ast.VarDecl) and stmt.init is not None:
                stmt.init = _inline_expr(stmt.init, inlinable, counter)
            elif isinstance(stmt, ast.Assign):
                stmt.value = _inline_expr(stmt.value, inlinable, counter)
                if isinstance(stmt.target, ast.Index):
                    stmt.target.index = _inline_expr(stmt.target.index,
                                                     inlinable, counter)
            elif isinstance(stmt, (ast.If, ast.While)):
                stmt.cond = _inline_expr(stmt.cond, inlinable, counter)
            elif isinstance(stmt, ast.For) and stmt.cond is not None:
                stmt.cond = _inline_expr(stmt.cond, inlinable, counter)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                stmt.value = _inline_expr(stmt.value, inlinable, counter)
            elif isinstance(stmt, ast.ExprStmt):
                stmt.expr = _inline_expr(stmt.expr, inlinable, counter)
    return counter[0]
