"""Compiler configuration: the knobs of the multi-criteria compiler.

A configuration selects which optimisation passes run and with which
parameters.  Configurations can be encoded to/decoded from a vector in
``[0, 1]^N`` so the multi-objective search algorithms (Flower Pollination,
NSGA-II) can operate on a continuous representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Sequence

#: Allowed full-unroll limits (0 disables unrolling).
UNROLL_CHOICES = (0, 4, 8, 16, 32)

#: Gene-vector lengths of the two search spaces.  The *base* space is the
#: seed's seven axes; the *extended* space appends the CSE and peephole bits
#: plus the path-sensitive analysis bit (strictly opt-in, so default searches
#: consume their random streams exactly as before and fixed-seed archives
#: stay bit-for-bit reproducible).  Nine-gene vectors — the extended space
#: before path sensitivity existed — still decode, with the new axis off.
BASE_GENE_LENGTH = 7
LEGACY_EXTENDED_GENE_LENGTH = 9
EXTENDED_GENE_LENGTH = 10


@dataclass(frozen=True)
class CompilerConfig:
    """One point in the compiler's optimisation space."""

    constant_folding: bool = True
    unroll_limit: int = 0
    inline_simple_functions: bool = False
    dead_code_elimination: bool = True
    strength_reduction: bool = False
    spm_allocation: bool = False
    harden_security: bool = False
    enable_cse: bool = False
    enable_peephole: bool = False
    #: Opt-in analysis mode: prune infeasible CFG paths when maximising
    #: WCET/WCEC bounds (see :mod:`repro.wcet.paths`).  Changes no generated
    #: code — only how tightly the worst case is bounded.
    path_sensitive: bool = False

    def __post_init__(self):
        if self.unroll_limit not in UNROLL_CHOICES:
            raise ValueError(
                f"unroll_limit must be one of {UNROLL_CHOICES}, "
                f"got {self.unroll_limit}")

    # -- presets --------------------------------------------------------------
    @classmethod
    def baseline(cls) -> "CompilerConfig":
        """The "traditional toolchain" configuration: safe defaults only."""
        return cls(constant_folding=True, unroll_limit=0,
                   inline_simple_functions=False, dead_code_elimination=True,
                   strength_reduction=False, spm_allocation=False,
                   harden_security=False)

    @classmethod
    def performance(cls) -> "CompilerConfig":
        """Aggressive time-oriented configuration."""
        return cls(constant_folding=True, unroll_limit=16,
                   inline_simple_functions=True, dead_code_elimination=True,
                   strength_reduction=True, spm_allocation=True,
                   harden_security=False)

    @classmethod
    def secure(cls) -> "CompilerConfig":
        """Security-hardened configuration."""
        return cls(constant_folding=True, unroll_limit=8,
                   inline_simple_functions=True, dead_code_elimination=True,
                   strength_reduction=True, spm_allocation=True,
                   harden_security=True)

    def with_(self, **changes) -> "CompilerConfig":
        """A copy of this configuration with some fields replaced."""
        return replace(self, **changes)

    # -- encoding for the search algorithms -----------------------------------------
    @staticmethod
    def gene_length(extended: bool = False) -> int:
        """Dimensionality of the search space the optimisers operate on.

        ``extended=True`` adds the two IR cleanup axes (``enable_cse``,
        ``enable_peephole``) and the path-sensitive analysis axis.  The base
        space is the default so existing fixed-seed searches draw the exact
        random streams they always did.
        """
        return EXTENDED_GENE_LENGTH if extended else BASE_GENE_LENGTH

    @classmethod
    def from_genes(cls, genes: Sequence[float]) -> "CompilerConfig":
        """Decode a vector in ``[0, 1]^7`` (base) or ``[0, 1]^10`` (extended).

        Seven-gene vectors leave the extended axes at their defaults (off),
        so base-space searches never wander onto them; nine-gene vectors —
        the pre-path-sensitivity extended space — decode with
        ``path_sensitive`` off, keeping archived gene vectors valid.
        """
        if len(genes) not in (BASE_GENE_LENGTH, LEGACY_EXTENDED_GENE_LENGTH,
                              EXTENDED_GENE_LENGTH):
            raise ValueError(
                f"expected {BASE_GENE_LENGTH}, "
                f"{LEGACY_EXTENDED_GENE_LENGTH} or {EXTENDED_GENE_LENGTH} "
                f"genes, got {len(genes)}")
        clamped = [min(max(float(g), 0.0), 1.0) for g in genes]
        unroll_index = min(int(clamped[1] * len(UNROLL_CHOICES)),
                           len(UNROLL_CHOICES) - 1)
        extended = len(genes) >= LEGACY_EXTENDED_GENE_LENGTH
        full = len(genes) == EXTENDED_GENE_LENGTH
        return cls(
            constant_folding=clamped[0] > 0.5,
            unroll_limit=UNROLL_CHOICES[unroll_index],
            inline_simple_functions=clamped[2] > 0.5,
            dead_code_elimination=clamped[3] > 0.5,
            strength_reduction=clamped[4] > 0.5,
            spm_allocation=clamped[5] > 0.5,
            harden_security=clamped[6] > 0.5,
            enable_cse=clamped[7] > 0.5 if extended else False,
            enable_peephole=clamped[8] > 0.5 if extended else False,
            path_sensitive=clamped[9] > 0.5 if full else False,
        )

    def to_genes(self, extended: bool = False) -> List[float]:
        """Encode this configuration as the centre of its decoding region.

        Pass ``extended=True`` when the vector feeds an extended-space
        search (the optimisers do this for you); the base encoding simply
        drops the CSE/peephole bits.
        """
        unroll_index = UNROLL_CHOICES.index(self.unroll_limit)
        genes = [
            0.75 if self.constant_folding else 0.25,
            (unroll_index + 0.5) / len(UNROLL_CHOICES),
            0.75 if self.inline_simple_functions else 0.25,
            0.75 if self.dead_code_elimination else 0.25,
            0.75 if self.strength_reduction else 0.25,
            0.75 if self.spm_allocation else 0.25,
            0.75 if self.harden_security else 0.25,
        ]
        if extended:
            genes.append(0.75 if self.enable_cse else 0.25)
            genes.append(0.75 if self.enable_peephole else 0.25)
            genes.append(0.75 if self.path_sensitive else 0.25)
        return genes

    # -- reporting ----------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def short_name(self) -> str:
        flags = []
        if self.constant_folding:
            flags.append("cf")
        if self.unroll_limit:
            flags.append(f"unroll{self.unroll_limit}")
        if self.inline_simple_functions:
            flags.append("inline")
        if self.dead_code_elimination:
            flags.append("dce")
        if self.strength_reduction:
            flags.append("sr")
        if self.spm_allocation:
            flags.append("spm")
        if self.harden_security:
            flags.append("sec")
        if self.enable_cse:
            flags.append("cse")
        if self.enable_peephole:
            flags.append("peep")
        if self.path_sensitive:
            flags.append("paths")
        return "+".join(flags) if flags else "O0"
