"""Rendering per-pass pipeline timings: the ``--profile`` view.

The :class:`~repro.compiler.pipeline.manager.PassManager` counts every
pass's invocations and wall time; this module turns one or many of those
``stats()`` snapshots into something a human can read:

* :func:`aggregate_pipeline_stats` — fold per-run snapshots (e.g. the
  ``pipeline_stats`` of every :class:`~repro.scenarios.spec.ScenarioResult`
  in a sweep) into one rollup,
* :func:`profile_rows` — JSON-ready rows with derived per-pass metrics
  (average milliseconds per invocation, share of the total wall time),
  ordered by pipeline stage and descending wall time,
* :func:`render_profile` — the plain-text table printed by
  ``python -m repro.scenarios run --profile``.

The same rows appear as the ``profile`` field of ``run --profile --json``
and inside the evaluation service's ``GET /stats`` ``pipeline`` document,
so the CLI view and the service rollup read identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.compiler.pipeline.manager import merge_pipeline_stats
from repro.compiler.pipeline.passes import STAGES

#: Stages the toolchains time through ``PassManager.timed`` without
#: registering a pass (CSL parsing reports as ``frontend``; profiling and
#: scheduling belong to the complex workflow / coordination layer).  They
#: sort after the registered pipeline stages, in this order.
_EXTRA_STAGES = ("profiling", "coordination")


def aggregate_pipeline_stats(
        snapshots: Iterable[Optional[Dict[str, Dict[str, object]]]]
) -> Dict[str, Dict[str, object]]:
    """Fold many ``PassManager.stats()`` snapshots into one rollup.

    ``None`` entries are skipped, so the iterable can be fed
    ``result.pipeline_stats`` of a mixed sweep directly (custom-kind
    scenarios carry no pipeline stats).
    """
    totals: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        if snapshot:
            merge_pipeline_stats(totals, snapshot)
    return totals


def _stage_rank(stage: str) -> int:
    if stage in STAGES:
        return STAGES.index(stage)
    if stage in _EXTRA_STAGES:
        return len(STAGES) + _EXTRA_STAGES.index(stage)
    return len(STAGES) + len(_EXTRA_STAGES)


def profile_rows(totals: Dict[str, Dict[str, object]]
                 ) -> List[Dict[str, object]]:
    """JSON-ready profile rows derived from an aggregated stats mapping.

    Each row carries the raw counters (``stage``, ``invocations``,
    ``wall_s``) plus ``avg_ms`` (mean wall time per invocation) and
    ``share_pct`` (this pass's share of the total wall time).  Rows are
    ordered by pipeline stage, then by descending wall time within a stage
    — the order the table renders in.
    """
    total_wall = sum(float(row["wall_s"]) for row in totals.values())
    rows = []
    for name, row in totals.items():
        invocations = int(row["invocations"])
        wall_s = float(row["wall_s"])
        derived = {
            "pass": name,
            "stage": row["stage"],
            "invocations": invocations,
            "wall_s": wall_s,
            "avg_ms": (wall_s / invocations * 1e3) if invocations else 0.0,
            "share_pct": (wall_s / total_wall * 100.0) if total_wall else 0.0,
        }
        # Synthetic rows may carry extra counters (the path-feasibility
        # row's paths_enumerated/paths_pruned etc.); pass them through so
        # `--profile --json` and the service `GET /stats` expose them.
        for key, value in row.items():
            if key not in derived and key != "stage":
                derived[key] = value
        rows.append(derived)
    rows.sort(key=lambda r: (_stage_rank(str(r["stage"])), -r["wall_s"],
                             r["pass"]))
    return rows


def render_profile(totals: Dict[str, Dict[str, object]],
                   title: str = "pipeline profile") -> str:
    """The plain-text per-pass timing table (the ``--profile`` output)."""
    rows = profile_rows(totals)
    if not rows:
        return f"{title}: no pipeline timings recorded"
    headers = ("pass", "stage", "invocations", "wall ms", "avg ms", "share")
    body = [(str(row["pass"]), str(row["stage"]),
             str(row["invocations"]),
             f"{row['wall_s'] * 1e3:.2f}",
             f"{row['avg_ms']:.3f}",
             f"{row['share_pct']:5.1f}%")
            for row in rows]
    widths = [max(len(headers[i]), *(len(line[i]) for line in body))
              for i in range(len(headers))]
    def fmt(line):
        left = line[0].ljust(widths[0]) + "  " + line[1].ljust(widths[1])
        right = "  ".join(line[i].rjust(widths[i])
                          for i in range(2, len(headers)))
        return left + "  " + right
    total_wall = sum(float(row["wall_s"]) for row in totals.values())
    lines = [title, fmt(headers), "-" * len(fmt(headers))]
    lines.extend(fmt(line) for line in body)
    lines.append(f"total wall time: {total_wall * 1e3:.2f} ms")
    return "\n".join(lines)
