"""Unified compilation pipeline: explicit passes, one manager, shared stats.

Before this package, the compile path was hand-sequenced in three places
(the multi-criteria driver, the predictable toolchain and the evaluation
engine), and stage-cache keys were ad-hoc tuples maintained next to each
call site.  The pipeline makes the path declarative:

``PassManager``
    the ordered registry of :class:`Pass` objects — name, stage, enablement
    predicate, cache-key contribution — plus per-pass wall-time/invocation
    counters (``stats()``, engine-cache convention) and the stage-key
    derivation the engine caches are keyed by.

``CompilationPipeline``
    binds a platform to a manager and runs the stages: ``parse`` →
    ``pre_unroll`` → ``unroll_and_lower`` → ``ir_passes`` →
    ``backend_passes`` (or ``build`` for the uncached chain).

Every pipeline consumer surfaces the same stats upward: toolchains expose
``pipeline_stats()``, the scenario runner attaches them to each
:class:`~repro.scenarios.spec.ScenarioResult`, ``python -m repro.scenarios
run --json`` prints them, and the evaluation service aggregates them across
jobs under ``GET /stats``.
"""

from repro.compiler.pipeline.compile import CompilationPipeline
from repro.compiler.pipeline.manager import PassManager, merge_pipeline_stats
from repro.compiler.pipeline.passes import (
    ANALYSIS_PASS,
    PARSE_PASS,
    STAGES,
    Pass,
    PassContext,
    default_compile_passes,
)
from repro.compiler.pipeline.profile import (
    aggregate_pipeline_stats,
    profile_rows,
    render_profile,
)

__all__ = [
    "ANALYSIS_PASS",
    "CompilationPipeline",
    "PARSE_PASS",
    "Pass",
    "PassContext",
    "PassManager",
    "STAGES",
    "aggregate_pipeline_stats",
    "default_compile_passes",
    "merge_pipeline_stats",
    "profile_rows",
    "render_profile",
]
