"""The compilation pipeline: parse → AST passes → lower → IR → backend.

One :class:`CompilationPipeline` binds a platform and a
:class:`~repro.compiler.pipeline.manager.PassManager` and exposes the
compile path as *stage runs* over the registered pass list.  The evaluation
engine drives the stages through its caches (each stage method corresponds
to one cache boundary); :meth:`build` chains them for an uncached one-shot
build.  All stage methods replay the exact semantics of the previously
hand-sequenced call sites in :mod:`repro.compiler.evaluate` — same pass
order, same clone points, same statistics keys — so routed and legacy
builds are bit-for-bit identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.compiler.config import CompilerConfig
from repro.compiler.pipeline.manager import PassManager
from repro.compiler.pipeline.passes import PARSE_PASS, PassContext
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse_cached
from repro.hw.platform import Platform
from repro.ir.cfg import Program

#: The pass whose position splits the AST stage into the shared pre-unroll
#: prefix and the per-unroll-limit suffix (the lowering cache's two tables).
_UNROLL_PASS = "unroll-loops"

#: Re-run after unrolling when both are enabled (unrolling exposes new
#: constant-index expressions; the counter accumulates over both rounds).
_FOLD_PASS = "constant-folding"


class CompilationPipeline:
    """Declarative compile path over a registered pass list."""

    def __init__(self, platform: Platform,
                 manager: Optional[PassManager] = None):
        self.platform = platform
        self.manager = manager if manager is not None else PassManager()

    # ------------------------------------------------------------ frontend --
    def parse(self, source: str,
              source_name: str = "<memory>") -> ast.SourceModule:
        """Parse (process-wide cached) under the ``parse`` pass's timer.

        The cache key carries this manager's frontend-stage identity, so a
        pipeline with a custom frontend pass never shares parse results
        with the stock one.  Returns a shared module instance — treat it as
        read-only; every stage below clones before mutating.
        """
        with self.manager.timed(PARSE_PASS):
            return parse_cached(source, source_name,
                                extra_key=self.manager.frontend_key())

    def _run_stage(self, stage: str, ctx: PassContext) -> None:
        """Run every registered (non-marker) pass of ``stage`` in order.

        Iterating the registered list — not a hard-coded name sequence — is
        what makes custom passes first-class: a pass registered on this
        pipeline's manager executes here exactly where its position in the
        list says, with no engine changes (see ``docs/passes.md``).
        """
        for registered in self.manager.passes(stage):
            if registered.apply is not None:
                self.manager.run(registered.name, ctx)

    # ----------------------------------------------------------- AST stage --
    def pre_unroll(self, module: ast.SourceModule, config: CompilerConfig
                   ) -> Tuple[ast.SourceModule, Dict[str, int]]:
        """Loop-bound inference plus the AST passes that run before unrolling.

        Of the stock passes only hardening, folding and inlining consume
        configuration here, so the result is shared between configurations
        differing in ``unroll_limit`` (the lowering cache's pre-unroll
        table) — a custom AST pass registered before ``unroll-loops`` joins
        this prefix (and should contribute its cache key accordingly).  The
        input module is never modified; the returned module is a fresh
        clone.
        """
        ctx = PassContext(config=config, platform=self.platform,
                          module=ast.clone_module(module))
        for registered in self.manager.passes("ast"):
            if registered.name == _UNROLL_PASS:
                break
            if registered.apply is not None:
                self.manager.run(registered.name, ctx)
        return ctx.module, ctx.statistics

    def unroll_and_lower(self, working: ast.SourceModule,
                         config: CompilerConfig,
                         statistics: Dict[str, int]) -> Program:
        """Unroll (mutating ``working`` in place) and lower to IR.

        Unrolling exposes constant-index expressions, so the folding pass
        runs a second round when both are enabled (its counter
        accumulates).  AST passes registered *after* ``unroll-loops`` run
        here, before lowering.
        """
        ctx = PassContext(config=config, platform=self.platform,
                          module=working, statistics=statistics)
        names = [p.name for p in self.manager.passes("ast")]
        post_unroll = (names.index(_UNROLL_PASS) + 1
                       if _UNROLL_PASS in names else len(names))
        if _UNROLL_PASS in names and self.manager.run(_UNROLL_PASS, ctx):
            if _FOLD_PASS in names:
                self.manager.run(_FOLD_PASS, ctx)
        for registered in self.manager.passes("ast")[post_unroll:]:
            if registered.apply is not None:
                self.manager.run(registered.name, ctx)
        self._run_stage("lower", ctx)
        return ctx.program

    # ------------------------------------------------------------ IR stage --
    def ir_passes(self, program: Program,
                  config: CompilerConfig) -> Dict[str, int]:
        """The platform-independent IR passes, mutating ``program`` in place.

        Stock order: CSE first (recomputations become copies while their
        producers are still live), DCE and strength reduction in their
        historical order, the peephole pass last so it can clean up the
        self-copies and foldable patterns the other three leave behind.
        Custom IR passes run at their registered position.
        """
        ctx = PassContext(config=config, platform=self.platform,
                          program=program)
        self._run_stage("ir", ctx)
        return ctx.statistics

    # ------------------------------------------------------------- backend --
    def backend_passes(self, program: Program,
                       config: CompilerConfig) -> Dict[str, int]:
        """The platform-dependent passes (scratchpad allocation, always last)."""
        ctx = PassContext(config=config, platform=self.platform,
                          program=program)
        self._run_stage("backend", ctx)
        return ctx.statistics

    # ----------------------------------------------------------- one-shot --
    def build(self, module: ast.SourceModule, config: CompilerConfig
              ) -> Tuple[Program, Dict[str, int]]:
        """Uncached end-to-end build (the engine adds the cache layers)."""
        working, statistics = self.pre_unroll(module, config)
        program = self.unroll_and_lower(working, config, statistics)
        statistics.update(self.ir_passes(program, config))
        statistics.update(self.backend_passes(program, config))
        return program, statistics

    # ------------------------------------------------------ cache factories --
    def lowering_cache(self, max_entries: Optional[int] = None):
        """A :class:`~repro.compiler.engine.cache.LoweringCache` keyed by
        this pipeline's pass list (pre-unroll prefix / post-lower stages)."""
        from repro.compiler.engine.cache import LoweringCache
        manager = self.manager
        return LoweringCache(
            max_entries=max_entries,
            key_fn=lambda config: manager.stage_key(config, "lower"),
            pre_unroll_key_fn=lambda config: manager.key_before(
                config, _UNROLL_PASS))

    def ir_stage_cache(self, max_entries: Optional[int] = None):
        """An :class:`~repro.compiler.engine.cache.IrStageCache` keyed by
        this pipeline's pass list through the IR stage."""
        from repro.compiler.engine.cache import IrStageCache
        manager = self.manager
        return IrStageCache(
            max_entries=max_entries,
            key_fn=lambda config: manager.stage_key(config, "ir"))

    def variant_cache(self, max_entries: Optional[int] = None):
        """A :class:`~repro.compiler.engine.cache.VariantCache` keyed by the
        full registered pass list."""
        from repro.compiler.engine.cache import VariantCache
        return VariantCache(max_entries=max_entries,
                            key_fn=self.manager.canonical_key)

    # --------------------------------------------------------------- stats --
    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-pass wall-time/invocation counters (see ``PassManager.stats``)."""
        return self.manager.stats()
