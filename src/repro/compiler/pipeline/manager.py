"""The pass manager: registration, stage-cache keys and per-pass counters.

One :class:`PassManager` owns the ordered pass list of a compilation
pipeline.  It answers three questions the compile path used to answer in
three different places:

* *which passes run, in what order* — :meth:`passes` /
  :meth:`register`, replacing the hand-sequenced call sites,
* *what keys the stage caches use* — :meth:`stage_key` /
  :meth:`key_before` / :meth:`canonical_key` concatenate the registered
  passes' cache-key contributions, so the engine's
  ``LoweringCache``/``IrStageCache``/``VariantCache`` are keyed by the pass
  list instead of ad-hoc field tuples (registering a new configurable pass
  automatically widens every downstream key),
* *where the time goes* — every :meth:`run` and :meth:`timed` block feeds
  per-pass wall-time and invocation counters, reported through
  :meth:`stats` in the engine-cache ``stats()`` convention and surfaced by
  ``python -m repro.scenarios run --json`` and the service ``GET /stats``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

from repro.compiler.config import CompilerConfig
from repro.compiler.pipeline.passes import (
    STAGES,
    Pass,
    PassContext,
    _no_key,
    default_compile_passes,
)
from repro.errors import CompilationError


class PassManager:
    """Ordered registry of :class:`Pass` objects with timing counters."""

    def __init__(self, passes: Optional[Iterable[Pass]] = None):
        """``passes=None`` installs the stock compile pass list; pass an
        explicit (possibly empty) iterable for custom pipelines — e.g. the
        complex toolchain's profiling flow, which only uses :meth:`timed`.
        """
        self._passes: List[Pass] = list(
            default_compile_passes() if passes is None else passes)
        self._check_stage_order(self._passes)
        #: name -> [stage, invocations, wall-clock seconds]
        self._counters: Dict[str, List] = {}
        #: Memoised key plans: query -> tuple of contributing cache_key
        #: callables.  Key derivation runs on every engine-cache get/put —
        #: the hottest path of a search — so the per-query pass walk
        #: (stage ranks, empty contributions) is done once per pass-list
        #: state, not per lookup.
        self._key_plans: Dict[Tuple[str, Optional[str]], Tuple] = {}

    # ----------------------------------------------------------- registry --
    @staticmethod
    def _check_stage_order(passes: List[Pass]) -> None:
        ranks = [STAGES.index(p.stage) for p in passes]
        if ranks != sorted(ranks):
            raise CompilationError(
                "pass list is not in stage order: "
                + " -> ".join(f"{p.name}({p.stage})" for p in passes))
        names = [p.name for p in passes]
        if len(set(names)) != len(names):
            raise CompilationError(f"duplicate pass names in {names}")

    def passes(self, stage: Optional[str] = None) -> List[Pass]:
        """The registered passes, optionally restricted to one stage."""
        if stage is None:
            return list(self._passes)
        return [p for p in self._passes if p.stage == stage]

    def pass_named(self, name: str) -> Pass:
        """The registered pass called ``name`` (:class:`CompilationError`
        for unknown names)."""
        for registered in self._passes:
            if registered.name == name:
                return registered
        raise CompilationError(f"no registered pass named {name!r}")

    def register(self, new_pass: Pass, *,
                 after: Optional[str] = None,
                 before: Optional[str] = None) -> None:
        """Insert a pass, by default at the end of its stage.

        ``after``/``before`` name an existing pass to anchor the insertion;
        the resulting list must still be in stage order.  Stage-cache keys
        widen automatically — any cache built from this manager *before*
        the registration keeps serving its old keys, so register passes
        before building engines.
        """
        if after is not None and before is not None:
            raise CompilationError("pass either `after` or `before`, not both")
        passes = list(self._passes)
        if after is not None:
            index = passes.index(self.pass_named(after)) + 1
        elif before is not None:
            index = passes.index(self.pass_named(before))
        else:
            rank = STAGES.index(new_pass.stage)
            index = len(passes)
            for position, registered in enumerate(passes):
                if STAGES.index(registered.stage) > rank:
                    index = position
                    break
        passes.insert(index, new_pass)
        self._check_stage_order(passes)
        self._passes = passes
        self._key_plans.clear()

    # --------------------------------------------------------- cache keys --
    def _plan(self, query: Tuple[str, Optional[str]]) -> Tuple:
        """The contributing ``cache_key`` callables of one key query.

        Built once per pass-list state (``register`` invalidates): the plan
        holds only passes with a real contribution, so deriving a key costs
        one callable per *configurable* pass and nothing else.
        """
        plan = self._key_plans.get(query)
        if plan is not None:
            return plan
        kind, name = query
        if kind == "before":
            names = [p.name for p in self._passes]
            if name not in names:
                raise CompilationError(f"no registered pass named {name!r}")
            contributing = self._passes[:names.index(name)]
        elif kind == "stage":
            if name not in STAGES:
                raise CompilationError(f"unknown stage {name!r}")
            rank = STAGES.index(name)
            contributing = [p for p in self._passes
                            if STAGES.index(p.stage) <= rank]
        else:  # canonical
            contributing = self._passes
        plan = tuple(p.cache_key for p in contributing
                     if p.cache_key is not _no_key)
        self._key_plans[query] = plan
        return plan

    def key_before(self, config: CompilerConfig, pass_name: str) -> Tuple:
        """Concatenated cache-key contributions of passes before ``pass_name``."""
        key: Tuple = ()
        for cache_key in self._plan(("before", pass_name)):
            key += cache_key(config)
        return key

    def stage_key(self, config: CompilerConfig, through_stage: str) -> Tuple:
        """Concatenated contributions of every pass in stages <= ``through_stage``.

        This is the cache key of the program state *after* the named stage:
        two configurations with equal keys produce identical programs at
        that point of the pipeline.
        """
        key: Tuple = ()
        for cache_key in self._plan(("stage", through_stage)):
            key += cache_key(config)
        return key

    def canonical_key(self, config: CompilerConfig) -> Tuple:
        """The full-pipeline key (every registered pass's contribution)."""
        key: Tuple = ()
        for cache_key in self._plan(("canonical", None)):
            key += cache_key(config)
        return key

    def frontend_key(self) -> Tuple[str, ...]:
        """Identity of the frontend stage, for the process-wide parse cache.

        The parse cache runs before any configuration exists, so the key is
        the *names* of the registered frontend-stage passes rather than
        config-dependent contributions: registering a custom frontend pass
        changes the key and retires every entry parsed without it — the
        same automatic widening the config-keyed stage caches get from
        :meth:`stage_key`.
        """
        return tuple(p.name for p in self._passes if p.stage == "frontend")

    def pass_list_key(self) -> Tuple[Tuple[str, str], ...]:
        """Identity of the full registered pass list, as ``(stage, name)``.

        Namespaces the persistent analysis-cache tier
        (:mod:`repro.compiler.engine.persist`): registering or removing a
        pass changes every on-disk digest, retiring entries produced by a
        different pipeline — the cross-process analogue of the automatic key
        widening the in-memory stage caches get from :meth:`stage_key`.
        """
        return tuple((p.stage, p.name) for p in self._passes)

    # ----------------------------------------------------------- execution --
    def run(self, name: str, ctx: PassContext) -> bool:
        """Apply the named pass to ``ctx`` if the config enables it.

        Returns whether the pass ran.  Disabled passes cost one predicate
        call and are not counted as invocations.
        """
        registered = self.pass_named(name)
        if registered.apply is None:
            raise CompilationError(
                f"pass {name!r} is a marker pass; time it with `timed()`")
        if not registered.enabled(ctx.config):
            return False
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = [registered.stage, 0, 0.0]
        started = time.perf_counter()
        registered.apply(ctx)
        counter[1] += 1
        counter[2] += time.perf_counter() - started
        return True

    @contextmanager
    def timed(self, name: str, stage: Optional[str] = None):
        """Count a block against pass ``name`` (marker passes, ad-hoc stages).

        ``stage`` defaults to the registered pass's stage and is required
        for names outside the pass list (e.g. the complex toolchain's
        ``profile`` stage).
        """
        if stage is None:
            stage = self.pass_named(name).stage
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = [stage, 0, 0.0]
        started = time.perf_counter()
        try:
            yield
        finally:
            counter[1] += 1
            counter[2] += time.perf_counter() - started

    # ------------------------------------------------------------- stats --
    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-pass counters: ``{name: {stage, invocations, wall_s}}``.

        Only passes that ran (or were timed) appear; a registered pass a
        search never enabled contributes no row.
        """
        return {
            name: {"stage": stage, "invocations": invocations,
                   "wall_s": wall_s}
            for name, (stage, invocations, wall_s)
            in self._counters.items()
        }

    def reset_stats(self) -> None:
        """Zero every per-pass counter (the pass list itself is untouched)."""
        self._counters.clear()


def merge_pipeline_stats(total: Dict[str, Dict[str, object]],
                         update: Dict[str, Dict[str, object]]) -> None:
    """Accumulate one ``PassManager.stats()`` snapshot into ``total``.

    Used by the evaluation service's cross-job ``GET /stats`` rollup (the
    scenario CLI reports per-run snapshots, no aggregation).
    """
    for name, row in update.items():
        entry = total.get(name)
        if entry is None:
            total[name] = dict(row)
        else:
            # Sum every numeric counter (invocations, wall_s and any extra
            # keys a synthetic row carries, e.g. the path-feasibility row's
            # pruning counters); non-numeric fields like `stage` keep the
            # first snapshot's value.
            for key, value in row.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                existing = entry.get(key, 0)
                if isinstance(existing, bool) or not isinstance(existing, (int, float)):
                    continue
                entry[key] = existing + value
