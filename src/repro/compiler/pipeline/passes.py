"""Declarative pass objects of the compilation pipeline.

A :class:`Pass` is one named, registered step of the compile path: it knows
its pipeline *stage*, whether a given :class:`CompilerConfig` enables it,
which configuration fields it consumes (its *cache-key contribution* — the
basis of the engine's stage-cache keys), and how to apply itself to a
:class:`PassContext`.  :func:`default_compile_passes` builds the stock pass
list, wiring the existing implementations in
:mod:`repro.compiler.passes`, :mod:`repro.frontend.lowering`,
:mod:`repro.security.transforms` and :mod:`repro.wcet.loopbounds` into the
declarative pipeline — the pass functions themselves are unchanged, so the
pipeline produces bit-for-bit the programs the hand-sequenced call sites
produced.

Two registered passes are *markers*: ``parse`` and ``analysis`` have no
``apply`` of their own — parsing happens before a module exists and the
WCET/WCEC queries run inside the evaluation engine's caches — but they are
declared in the pass list so the pipeline's stage ordering is complete and
their wall-time/invocation counters live in the same ``stats()`` table as
every other pass (their owners time them through
:meth:`PassManager.timed`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.compiler.config import CompilerConfig
from repro.compiler.passes.ast_passes import (
    fold_constants,
    inline_simple_functions,
    unroll_loops,
)
from repro.compiler.passes.ir_passes import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    peephole_optimize,
    strength_reduce,
)
from repro.compiler.passes.spm import allocate_scratchpad
from repro.frontend import ast_nodes as ast
from repro.frontend.lowering import lower_module
from repro.hw.platform import Platform
from repro.ir.cfg import Program
from repro.security.transforms import harden_module
from repro.wcet.loopbounds import infer_loop_bounds

#: Pipeline stages in execution order.  ``frontend`` covers parsing,
#: ``ast`` the source-level passes, ``lower`` the IR generation, ``ir`` the
#: platform-independent IR passes, ``backend`` the platform-dependent ones
#: (scratchpad allocation), ``analysis`` the static WCET/WCEC queries.
STAGES = ("frontend", "ast", "lower", "ir", "backend", "analysis")


def _always(config: CompilerConfig) -> bool:
    return True


def _no_key(config: CompilerConfig) -> Tuple:
    return ()


@dataclass
class PassContext:
    """Mutable state threaded through the passes of one build.

    AST-stage passes read and replace ``module``; the lowering pass fills
    ``program``; IR/backend passes mutate ``program`` in place.  Every pass
    records its counters under its statistic name in ``statistics`` (the
    dict that ends up as ``Variant.pass_statistics``).
    """

    config: CompilerConfig
    platform: Optional[Platform] = None
    module: Optional[ast.SourceModule] = None
    program: Optional[Program] = None
    statistics: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class Pass:
    """One named, registered step of the compilation pipeline.

    ``cache_key`` returns the tuple of configuration fields this pass
    consumes; the :class:`~repro.compiler.pipeline.manager.PassManager`
    concatenates the contributions of the registered pass list into the
    engine's stage-cache keys, so registering a new configurable pass
    automatically widens the keys of every downstream cache stage.
    ``apply`` may be ``None`` for marker passes timed by their owner (see
    the module docstring).
    """

    name: str
    stage: str
    apply: Optional[Callable[[PassContext], None]] = None
    enabled: Callable[[CompilerConfig], bool] = _always
    cache_key: Callable[[CompilerConfig], Tuple] = _no_key

    def __post_init__(self):
        if self.stage not in STAGES:
            raise ValueError(
                f"pass {self.name!r}: unknown stage {self.stage!r}; "
                f"expected one of {STAGES}")


# ---------------------------------------------------------------------------
# Stock pass implementations (thin adapters over the existing pass functions)
# ---------------------------------------------------------------------------
def _infer_loop_bounds(ctx: PassContext) -> None:
    infer_loop_bounds(ctx.module)


def _harden_security(ctx: PassContext) -> None:
    ctx.module, hardening = harden_module(ctx.module)
    ctx.statistics["hardened_branches"] = hardening.transformed_count


def _fold_constants(ctx: PassContext) -> None:
    # Accumulates: the pass runs again after unrolling exposes new
    # constant-index expressions, and both rounds report one counter.
    ctx.statistics["constant_folds"] = (
        ctx.statistics.get("constant_folds", 0) + fold_constants(ctx.module))


def _inline_simple_functions(ctx: PassContext) -> None:
    ctx.statistics["inlined_calls"] = inline_simple_functions(ctx.module)


def _unroll_loops(ctx: PassContext) -> None:
    ctx.statistics["unrolled_loops"] = unroll_loops(
        ctx.module, ctx.config.unroll_limit)


def _lower_to_ir(ctx: PassContext) -> None:
    ctx.program = lower_module(ctx.module)


def _eliminate_common_subexpressions(ctx: PassContext) -> None:
    ctx.statistics["cse_replacements"] = (
        eliminate_common_subexpressions(ctx.program))


def _eliminate_dead_code(ctx: PassContext) -> None:
    ctx.statistics["dead_instructions"] = eliminate_dead_code(ctx.program)


def _strength_reduce(ctx: PassContext) -> None:
    ctx.statistics["strength_reductions"] = strength_reduce(ctx.program)


def _peephole_optimize(ctx: PassContext) -> None:
    ctx.statistics["peephole_rewrites"] = peephole_optimize(ctx.program)


def _allocate_scratchpad(ctx: PassContext) -> None:
    allocation = allocate_scratchpad(ctx.program, ctx.platform)
    ctx.statistics["spm_functions"] = len(allocation.placed_functions)


#: Names of the externally-driven marker passes.
PARSE_PASS = "parse"
ANALYSIS_PASS = "analysis"
PATH_FEASIBILITY_PASS = "path-feasibility"


def default_compile_passes() -> Tuple[Pass, ...]:
    """The stock pass list, in execution order.

    Matches the hand-sequenced pipeline of
    :mod:`repro.compiler.evaluate` exactly: loop-bound inference and the
    pre-unroll AST passes (hardening, folding, inlining), unrolling (with a
    second folding round, re-run by the pipeline when both are enabled),
    lowering, the platform-independent IR passes (CSE before DCE so
    downgraded copies can turn dead, strength reduction, peephole cleanups
    last), and scratchpad allocation after all of them.
    """
    return (
        Pass(PARSE_PASS, "frontend"),
        Pass("loop-bound-inference", "ast", _infer_loop_bounds),
        Pass("harden-security", "ast", _harden_security,
             enabled=lambda config: config.harden_security,
             cache_key=lambda config: (config.harden_security,)),
        Pass("constant-folding", "ast", _fold_constants,
             enabled=lambda config: config.constant_folding,
             cache_key=lambda config: (config.constant_folding,)),
        Pass("inline-simple-functions", "ast", _inline_simple_functions,
             enabled=lambda config: config.inline_simple_functions,
             cache_key=lambda config: (config.inline_simple_functions,)),
        Pass("unroll-loops", "ast", _unroll_loops,
             enabled=lambda config: bool(config.unroll_limit),
             cache_key=lambda config: (config.unroll_limit,)),
        Pass("lower-to-ir", "lower", _lower_to_ir),
        Pass("common-subexpression-elimination", "ir",
             _eliminate_common_subexpressions,
             enabled=lambda config: config.enable_cse,
             cache_key=lambda config: (config.enable_cse,)),
        Pass("dead-code-elimination", "ir", _eliminate_dead_code,
             enabled=lambda config: config.dead_code_elimination,
             cache_key=lambda config: (config.dead_code_elimination,)),
        Pass("strength-reduction", "ir", _strength_reduce,
             enabled=lambda config: config.strength_reduction,
             cache_key=lambda config: (config.strength_reduction,)),
        Pass("peephole", "ir", _peephole_optimize,
             enabled=lambda config: config.enable_peephole,
             cache_key=lambda config: (config.enable_peephole,)),
        # Marker: path-sensitive analysis transforms nothing, but its flag
        # must widen the IR-stage and canonical keys so variants analysed in
        # different modes never share cached bounds (the engine runs the
        # pruning inside its analysis caches and reports counters through
        # `pipeline_stats()`).
        Pass(PATH_FEASIBILITY_PASS, "ir",
             enabled=lambda config: config.path_sensitive,
             cache_key=lambda config: (config.path_sensitive,)),
        Pass("spm-allocation", "backend", _allocate_scratchpad,
             enabled=lambda config: config.spm_allocation,
             cache_key=lambda config: (config.spm_allocation,)),
        Pass(ANALYSIS_PASS, "analysis"),
    )
