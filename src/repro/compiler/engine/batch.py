"""Population-at-a-time evaluation with optional process parallelism.

:class:`BatchEvaluator` fronts an :class:`EvaluationEngine` for the
multi-objective optimisers: it deduplicates a population of candidate
configurations, evaluates the missing ones — serially through the engine's
caches, or fanned out over a ``concurrent.futures`` process pool — and
returns variants aligned with the input population.

The parallel path is strictly opt-in and falls back to serial evaluation
whenever it cannot apply:

* a security evaluator is attached (closures don't pickle),
* the platform offers fewer than two workers,
* the pool cannot be created or a worker fails (restricted sandboxes).

Workers re-evaluate configurations from scratch (caches are per-process), so
parallel results are bit-for-bit identical to serial ones — a property the
test suite asserts.  On a multi-core host the pool wins on cold populations;
on warm caches the serial path is faster because almost everything hits.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler.config import CompilerConfig
from repro.compiler.engine.cache import canonical_key
from repro.compiler.engine.evaluator import EvaluationEngine
from repro.compiler.evaluate import Variant

#: Payload handed to pool workers: everything needed to rebuild the pipeline.
_WorkerPayload = Tuple[object, object, Tuple[str, ...], Optional[str],
                       Optional[str], bool, CompilerConfig]


def _evaluate_in_worker(payload: _WorkerPayload) -> Variant:
    """Top-level worker entry point (must be picklable)."""
    module, platform, entries, core_name, opp_label, aggregate, config = payload
    core = None
    if core_name is not None:
        core = next(c for c in platform.cores if c.name == core_name)
    opp = None
    if core is not None and opp_label is not None:
        opp = next(o for o in core.operating_points if o.label == opp_label)
    engine = EvaluationEngine(module, platform, entries, core=core, opp=opp,
                              aggregate=aggregate)
    return engine.evaluate(config)


class BatchEvaluator:
    """Evaluates whole populations of configurations at once."""

    def __init__(self, engine: EvaluationEngine, parallel: bool = False,
                 max_workers: Optional[int] = None,
                 config_transform: Optional[
                     Callable[[CompilerConfig], CompilerConfig]] = None):
        self.engine = engine
        self.parallel = parallel
        self.max_workers = max_workers
        #: Applied to every configuration before evaluation (and before
        #: deduplication, so configurations the transform collapses are
        #: evaluated once).  Lets a driver pin evaluation-mode flags — e.g.
        #: forcing ``path_sensitive`` — without teaching the optimisers
        #: about them.
        self.config_transform = config_transform

    # -- call-compatible with the optimisers' per-config evaluator -------------
    def __call__(self, config: CompilerConfig) -> Variant:
        if self.config_transform is not None:
            config = self.config_transform(config)
        return self.engine.evaluate(config)

    def evaluate(self, configs: Sequence[CompilerConfig]) -> List[Variant]:
        """One variant per configuration, aligned with the input order."""
        if self.config_transform is not None:
            configs = [self.config_transform(config) for config in configs]
        pending: Dict[tuple, CompilerConfig] = {}
        for config in configs:
            if config not in self.engine.variants:
                pending.setdefault(canonical_key(config), config)

        if pending and self.parallel and self._parallel_applicable():
            self._evaluate_parallel(list(pending.values()))
        return [self.engine.evaluate(config) for config in configs]

    # -- parallel path ---------------------------------------------------------
    def _parallel_applicable(self) -> bool:
        if self.engine.security_evaluator is not None:
            return False
        workers = self.max_workers or os.cpu_count() or 1
        return workers >= 2

    def _evaluate_parallel(self, configs: List[CompilerConfig]) -> None:
        """Fan pending configurations out over a process pool.

        Results are installed into the engine's variant cache; any failure
        leaves the cache untouched and the caller's serial pass fills the
        gaps (identical results, just slower).
        """
        engine = self.engine
        payloads = [
            (engine.module, engine.platform, tuple(engine.entry_functions),
             engine.core.name if engine.core is not None else None,
             engine.opp.label if engine.opp is not None else None,
             engine.aggregate, config)
            for config in configs
        ]
        try:
            import concurrent.futures
            with concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.max_workers) as pool:
                variants = list(pool.map(_evaluate_in_worker, payloads))
        except Exception:
            return  # serial fallback picks the work up
        for config, variant in zip(configs, variants):
            if config not in engine.variants:
                engine.variants.put(config, variant)
