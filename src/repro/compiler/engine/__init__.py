"""Batched variant-evaluation engine with shared analysis caching.

This package is the single entry point for evaluating compiler
configurations during the multi-objective (energy/time/security) search.
The seed code rebuilt and re-analysed every candidate from scratch; the
engine memoises the pipeline at three stages so shared sub-structure is
computed once:

``CompilerConfig`` ──┐
                     ▼
  [1] VariantCache ── canonical config key ──────────────► Variant
                     │ miss
                     ▼
  [2] LoweringCache ─ AST-stage key (harden/fold/inline/unroll)
                     │ hit: Program.clone() of the cached lowered IR
                     │ miss: clone module → AST passes → lower
                     ▼
      IR passes (DCE, strength reduction, SPM) on the private clone
                     ▼
  [3] AnalysisCache ─ structural program fingerprint
                     │ one StructuralCostEngine sweep fills the whole
                     │ per-function cycles/energy table per (core[, OPP]);
                     │ every further entry point, operating point or core
                     ▼ is a table lookup
              Variant (WCET, WCEC, security, code size)

Stage [2] means configurations differing only in IR-level flags skip
re-lowering; stage [3] means the WCET/Energy analysers' per-function results
are reused across every variant sharing a program *and* across the
coordination layer's per-core/per-OPP ETS sweeps (cycle bounds are
frequency-independent, so DVFS sweeps reuse one cycles table).

:class:`BatchEvaluator` evaluates whole populations at once (deduplicated,
optionally over a process pool with a serial fallback), and
:mod:`~repro.compiler.engine.vectorized` supplies the numpy-vectorised
``non_dominated_sort`` / ``crowding_distance`` / ``pareto_front`` used by
both NSGA-II and the FPA optimiser — with the seed's pure-Python
implementations retained in :mod:`~repro.compiler.engine.reference` as the
property-tested oracle.
"""

from repro.compiler.engine.batch import BatchEvaluator
from repro.compiler.engine.cache import (
    PROCESS_CACHE_DEFAULT_MAX_ENTRIES,
    AnalysisCache,
    CacheStats,
    IrStageCache,
    LoweringCache,
    VariantCache,
    ast_stage_key,
    canonical_key,
    disable_process_analysis_cache,
    enable_process_analysis_cache,
    process_analysis_cache,
    process_analysis_cache_enabled,
    process_analysis_cache_stats,
    process_cache_store,
    process_cache_store_stats,
    program_fingerprint,
)
from repro.compiler.engine.evaluator import ALL_TASKS_ENTRY, EvaluationEngine
from repro.compiler.engine.persist import (
    PersistentCacheStore,
    PersistError,
    key_digest,
    validate_cache_dir,
)
from repro.compiler.engine.reference import (
    ObjectivePoint,
    crowding_distance_reference,
    non_dominated_sort_reference,
    pareto_front_reference,
)
from repro.compiler.engine.vectorized import (
    crowding_distance,
    dominance_matrix,
    non_dominated_sort,
    objectives_matrix,
    pareto_front,
)

__all__ = [
    "ALL_TASKS_ENTRY",
    "AnalysisCache",
    "BatchEvaluator",
    "CacheStats",
    "EvaluationEngine",
    "IrStageCache",
    "LoweringCache",
    "ObjectivePoint",
    "PROCESS_CACHE_DEFAULT_MAX_ENTRIES",
    "PersistError",
    "PersistentCacheStore",
    "VariantCache",
    "ast_stage_key",
    "canonical_key",
    "key_digest",
    "crowding_distance",
    "crowding_distance_reference",
    "disable_process_analysis_cache",
    "dominance_matrix",
    "enable_process_analysis_cache",
    "non_dominated_sort",
    "non_dominated_sort_reference",
    "objectives_matrix",
    "pareto_front",
    "pareto_front_reference",
    "process_analysis_cache",
    "process_analysis_cache_enabled",
    "process_analysis_cache_stats",
    "process_cache_store",
    "process_cache_store_stats",
    "program_fingerprint",
    "validate_cache_dir",
]
