"""Persistent, cross-process tier under the engine analysis caches.

The in-memory caches of :mod:`repro.compiler.engine.cache` die with their
process: under ``serve --worker-mode process`` every pool worker rebuilds its
own WCET/WCEC tables, and a service restart starts cold even when the
``JobJournal`` replays every job.  This module adds the missing tier — an
append-only, segment-file :class:`PersistentCacheStore` that any number of
processes can read and write concurrently:

* **Records** are single JSONL lines, each prefixed with a CRC32 of its body
  (``"crc32hex payload\\n"``), so a torn tail from a crashed or SIGKILLed
  writer is detected and skipped on replay exactly like
  :mod:`repro.service.journal` skips torn journal lines.  Appending first
  repairs an unterminated tail (prepends a newline) so one crash never
  corrupts the next writer's record.
* **Keys** are SHA-256 digests over a canonical JSON serialisation of
  ``(platform key, pass-list key, analysis kind, core, operating point,
  structural fingerprint)`` — see :func:`key_digest`.  The pass-list
  component comes from :meth:`PassManager.pass_list_key
  <repro.compiler.pipeline.PassManager.pass_list_key>`: registering a custom
  pass changes every digest and retires all entries produced without it, the
  same automatic widening the in-memory stage caches get.  The structural
  fingerprint (:func:`~repro.compiler.engine.cache.program_fingerprint`)
  already captures the *effect* of the passes that ran, so the pass-list key
  acts as a schema/namespace guard rather than a correctness requirement.
* **Writers** serialise through an ``fcntl.flock`` on a lock file next to the
  segments, so concurrent processes never interleave partial lines.
* **Segments** roll over at ``max_segment_bytes``; once more than
  ``max_segments`` exist, the writer compacts: all live (last-wins) records
  are rewritten into one fresh segment and the old segments are deleted.
  Other processes detect the vanished segments on their next refresh and
  rebuild their index from scratch.

Values are opaque JSON objects.  For the analysis tier,
:func:`encode_analysis_entry` / :func:`decode_analysis_entry` serialise the
``(table, errors)`` pairs the :class:`~repro.compiler.engine.cache.AnalysisCache`
stores — floats survive JSON bit-for-bit (``json`` round-trips doubles via
``repr``), so disk hits are exactly the numbers the uncached analysis
produces.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import re
import threading
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import AnalysisError, TeamPlayError, UnboundedLoopError

try:  # pragma: no cover - import guard exercised only on non-POSIX hosts
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Version stamp mixed into every key digest.  Bump when the record payload
#: layout or the fingerprint canonicalisation changes: old segments then
#: simply stop matching instead of decoding into wrong-shaped entries.
PERSIST_CODEC_VERSION = 1

#: Segment file naming: ``cache-000001.seg``, monotonically increasing.
_SEGMENT_RE = re.compile(r"^cache-(\d{6})\.seg$")
_SEGMENT_FMT = "cache-{:06d}.seg"
_LOCK_FILENAME = ".lock"

#: Defaults chosen so a steady-state store stays small: analysis records are
#: a few KiB each, so 4 MiB segments hold ~1k records and compaction at 8
#: segments caps the directory around 32 MiB before rewrite.
DEFAULT_MAX_SEGMENT_BYTES = 4 * 1024 * 1024
DEFAULT_MAX_SEGMENTS = 8


class PersistError(TeamPlayError):
    """Raised for unusable cache directories and undecodable records."""


# ---------------------------------------------------------------------------
# Cache-directory validation
# ---------------------------------------------------------------------------
def validate_cache_dir(path: "os.PathLike[str] | str") -> str:
    """Normalise and sanity-check a ``--cache-dir`` argument, fail fast.

    Creates the directory (and parents) when missing; raises
    :class:`PersistError` with an actionable message when the path exists but
    is not a directory, cannot be created, or is not writable — *before* any
    job runs, instead of erroring mid-sweep inside a pool worker.
    Returns the absolute path.
    """
    directory = os.path.abspath(os.fspath(path))
    try:
        os.makedirs(directory, exist_ok=True)
    except FileExistsError:
        raise PersistError(
            f"cache dir {directory!r} exists and is not a directory") from None
    except OSError as error:
        raise PersistError(
            f"cannot create cache dir {directory!r}: {error}") from None
    if not os.path.isdir(directory):
        raise PersistError(
            f"cache dir {directory!r} exists and is not a directory")
    # Probe writability with a real create+unlink: os.access() lies for root
    # and for some network filesystems.
    probe = os.path.join(directory, f".write-probe-{os.getpid()}")
    try:
        with open(probe, "w", encoding="utf-8") as handle:
            handle.write("")
        os.unlink(probe)
    except OSError as error:
        raise PersistError(
            f"cache dir {directory!r} is not writable: {error}") from None
    return directory


# ---------------------------------------------------------------------------
# Key digests
# ---------------------------------------------------------------------------
def _canon(value):
    """JSON-serialisable canonical form of a key component.

    Handles the structural-fingerprint vocabulary: nested tuples/lists,
    strings, ints, floats, bools, ``None`` and :class:`enum.Enum` members
    (serialised by type and member name, never by implicit ordinal).
    """
    if isinstance(value, (tuple, list)):
        return [_canon(item) for item in value]
    if isinstance(value, enum.Enum):
        return {"enum": [type(value).__name__, value.name]}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise PersistError(
        f"unsupported key component of type {type(value).__name__!r}")


def key_digest(*parts) -> str:
    """SHA-256 hex digest of the canonical JSON serialisation of ``parts``."""
    blob = json.dumps([PERSIST_CODEC_VERSION, _canon(list(parts))],
                      separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


_default_pass_list_key: Optional[Tuple[Tuple[str, str], ...]] = None


def default_pass_list_key() -> Tuple[Tuple[str, str], ...]:
    """Pass-list key of the stock pipeline, for stand-alone analysis caches.

    Imported lazily: :mod:`repro.compiler.pipeline` imports back into the
    compiler package, so a module-level import would be circular from
    :mod:`repro.compiler.engine.cache`.
    """
    global _default_pass_list_key
    if _default_pass_list_key is None:
        from repro.compiler.pipeline.manager import PassManager
        _default_pass_list_key = PassManager().pass_list_key()
    return _default_pass_list_key


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------
def encode_record(digest: str, value) -> str:
    """One CRC-guarded JSONL record (without the trailing newline).

    The body is compact JSON *without* key sorting: JSON preserves object
    member order through a dump/load round trip, so decoded analysis tables
    iterate in exactly the order the uncached analysis produced them.
    """
    body = json.dumps({"k": digest, "v": value}, separators=(",", ":"))
    if "\n" in body:  # pragma: no cover - json never emits raw newlines
        raise PersistError("record body must be a single line")
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}"


def decode_record(line: str) -> Tuple[str, object]:
    """Inverse of :func:`encode_record`; raises :class:`PersistError` on any
    truncated, corrupted or foreign line (wrong CRC, bad JSON, missing keys).
    """
    prefix, sep, body = line.partition(" ")
    if not sep or len(prefix) != 8:
        raise PersistError("malformed record: missing CRC prefix")
    try:
        expected = int(prefix, 16)
    except ValueError:
        raise PersistError("malformed record: bad CRC prefix") from None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
        raise PersistError("malformed record: CRC mismatch (torn write?)")
    try:
        payload = json.loads(body)
    except ValueError:
        raise PersistError("malformed record: undecodable body") from None
    if not isinstance(payload, dict) or "k" not in payload or "v" not in payload:
        raise PersistError("malformed record: not a key/value object")
    digest = payload["k"]
    if not isinstance(digest, str):
        raise PersistError("malformed record: non-string key digest")
    return digest, payload["v"]


# ---------------------------------------------------------------------------
# Analysis-entry payload codec
# ---------------------------------------------------------------------------
_ERROR_CLASSES = {
    "AnalysisError": AnalysisError,
    "UnboundedLoopError": UnboundedLoopError,
}


def encode_analysis_entry(entry) -> Dict[str, object]:
    """JSON payload of an ``AnalysisCache`` ``(table, errors)`` pair."""
    table, errors = entry
    encoded_errors = {}
    for name, error in errors.items():
        payload: Dict[str, object] = {
            "cls": type(error).__name__, "msg": str(error)}
        function = getattr(error, "function", None)
        if function is not None:
            payload["fn"] = function
        encoded_errors[name] = payload
    return {"t": dict(table), "e": encoded_errors}


def _decode_error(payload) -> AnalysisError:
    cls = _ERROR_CLASSES.get(payload.get("cls"), AnalysisError)
    # Rebuild without calling __init__: subclass initialisers reformat their
    # message, but the persisted message is already the formatted one.
    error = cls.__new__(cls)
    Exception.__init__(error, payload.get("msg", ""))
    if "fn" in payload:
        error.function = payload["fn"]
    return error


def decode_analysis_entry(payload) -> Tuple[Dict[str, float], Dict[str, Exception]]:
    """Inverse of :func:`encode_analysis_entry`."""
    if not isinstance(payload, dict) or "t" not in payload:
        raise PersistError("malformed analysis entry payload")
    table = {str(name): value for name, value in payload["t"].items()}
    errors = {str(name): _decode_error(spec)
              for name, spec in payload.get("e", {}).items()}
    return table, errors


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------
class PersistentCacheStore:
    """Append-only, multi-process key/value store over segment files.

    One instance per process per directory; every instance keeps a full
    in-memory index (digest → value) plus per-segment consumed offsets, and
    lazily replays whatever other processes appended since the last refresh.
    Thread-safe; safe across ``fork()`` (no file handle is held open between
    operations, and the ``flock`` is taken per append on a freshly opened
    lock file, so parent and forked workers never share a lock state).
    """

    def __init__(self, directory: "os.PathLike[str] | str",
                 max_segment_bytes: int = DEFAULT_MAX_SEGMENT_BYTES,
                 max_segments: int = DEFAULT_MAX_SEGMENTS,
                 fsync: bool = False):
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be >= 1")
        if max_segments < 2:
            raise ValueError("max_segments must be >= 2")
        self.directory = validate_cache_dir(directory)
        self.max_segment_bytes = max_segment_bytes
        self.max_segments = max_segments
        self.fsync = fsync
        self._lock = threading.Lock()
        self._index: Dict[str, object] = {}
        #: Bytes of each segment consumed into the index, by file name.
        self._offsets: Dict[str, int] = {}
        # Counters (cumulative for the lifetime of this instance).
        self.hits = 0
        self.misses = 0
        self.appends = 0
        self.replayed_records = 0
        self.skipped_lines = 0
        self.compactions = 0
        self.rebuilds = 0
        with self._lock:
            self._refresh_locked()

    # ------------------------------------------------------------- helpers --
    def _segment_names(self) -> List[str]:
        try:
            names = os.listdir(self.directory)
        except OSError as error:
            raise PersistError(
                f"cannot list cache dir {self.directory!r}: {error}") from None
        segments = [n for n in names if _SEGMENT_RE.match(n)]
        segments.sort()
        return segments

    def _segment_path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    @staticmethod
    def _segment_index(name: str) -> int:
        match = _SEGMENT_RE.match(name)
        assert match is not None
        return int(match.group(1))

    class _FileLock:
        """Advisory whole-store writer lock (``flock`` on ``.lock``)."""

        def __init__(self, path: str):
            self._path = path
            self._handle = None

        def __enter__(self):
            self._handle = open(self._path, "a+b")
            if fcntl is not None:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            return self

        def __exit__(self, *exc):
            if self._handle is not None:
                if fcntl is not None:
                    fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
                self._handle.close()
                self._handle = None

    def _file_lock(self) -> "PersistentCacheStore._FileLock":
        return self._FileLock(os.path.join(self.directory, _LOCK_FILENAME))

    # -------------------------------------------------------------- replay --
    def _consume(self, data: bytes) -> int:
        """Index every complete line of ``data``; return the bytes consumed.

        An unterminated tail (a record another process is mid-write, or the
        torn last line of a crashed writer) is left unconsumed: the next
        refresh re-reads it once it is complete, and the next *appender*
        repairs it with a newline so it can never merge into a later record.
        """
        end = data.rfind(b"\n")
        if end < 0:
            return 0
        consumed = end + 1
        for raw in data[:consumed].split(b"\n"):
            if not raw:
                continue
            try:
                digest, value = decode_record(raw.decode("utf-8"))
            except (PersistError, UnicodeDecodeError):
                self.skipped_lines += 1
                continue
            self._index[digest] = value
            self.replayed_records += 1
        return consumed

    def _refresh_locked(self) -> None:
        """Fold whatever other processes appended into the in-memory index.

        If a previously consumed segment vanished or shrank (another process
        compacted the store), the index is rebuilt from scratch — offsets
        into deleted files are meaningless.
        """
        segments = self._segment_names()
        current = set(segments)
        for name, consumed in self._offsets.items():
            if name not in current:
                stale = True
            else:
                try:
                    stale = os.path.getsize(self._segment_path(name)) < consumed
                except OSError:
                    stale = True
            if stale:
                self._index.clear()
                self._offsets.clear()
                self.rebuilds += 1
                break
        for name in segments:
            consumed = self._offsets.get(name, 0)
            path = self._segment_path(name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue  # raced with a concurrent compaction; next refresh
            if size <= consumed:
                continue
            with open(path, "rb") as handle:
                handle.seek(consumed)
                data = handle.read()
            self._offsets[name] = consumed + self._consume(data)

    # ------------------------------------------------------------- appends --
    def _active_segment_locked(self) -> str:
        """The segment to append to, rolling over at the size cap."""
        segments = self._segment_names()
        if not segments:
            return self._segment_path(_SEGMENT_FMT.format(1))
        last = segments[-1]
        path = self._segment_path(last)
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size >= self.max_segment_bytes:
            return self._segment_path(
                _SEGMENT_FMT.format(self._segment_index(last) + 1))
        return path

    def _append_locked(self, line: str) -> None:
        path = self._active_segment_locked()
        data = line.encode("utf-8") + b"\n"
        with open(path, "a+b") as handle:
            # Repair a torn tail left by a crashed writer: our record must
            # start on a fresh line or replay would merge the two.
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self.appends += 1

    def _compact_locked(self) -> None:
        """Rewrite all live records into one fresh segment, drop the rest.

        Runs under the file lock.  The fresh segment gets the next index so
        its name never collides with a segment another reader still tracks;
        readers notice the deleted segments and rebuild.
        """
        segments = self._segment_names()
        if len(segments) <= self.max_segments:
            return
        # Fold every segment completely (our index may legitimately lag).
        self._offsets.clear()
        live: Dict[str, object] = {}
        replayed_before = self.replayed_records
        index_backup, self._index = self._index, live
        try:
            for name in segments:
                path = self._segment_path(name)
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                except OSError:
                    continue
                self._consume(data)
        finally:
            self._index = index_backup
        self.replayed_records = replayed_before
        self._index.update(live)
        target = _SEGMENT_FMT.format(self._segment_index(segments[-1]) + 1)
        tmp_path = self._segment_path(target + ".tmp")
        with open(tmp_path, "wb") as handle:
            for digest, value in live.items():
                handle.write(encode_record(digest, value).encode("utf-8"))
                handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self._segment_path(target))
        for name in segments:
            try:
                os.unlink(self._segment_path(name))
            except OSError:  # pragma: no cover - raced deletion is fine
                pass
        self._offsets = {target: os.path.getsize(self._segment_path(target))}
        self.compactions += 1

    # ---------------------------------------------------------- public API --
    def get(self, digest: str):
        """The stored value for ``digest``, or ``None``.

        A miss triggers one refresh (another process may have appended the
        record since our last read) before giving up.
        """
        with self._lock:
            value = self._index.get(digest)
            if value is None:
                self._refresh_locked()
                value = self._index.get(digest)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            return value

    def put(self, digest: str, value) -> None:
        """Append ``digest → value``; last write wins across processes."""
        line = encode_record(digest, value)
        with self._lock:
            with self._file_lock():
                self._append_locked(line)
                self._compact_locked()
            self._index[digest] = value

    def refresh(self) -> None:
        """Eagerly fold other processes' appends into the index."""
        with self._lock:
            self._refresh_locked()

    def compact(self) -> None:
        """Force a compaction pass (normally triggered by segment count)."""
        with self._lock:
            with self._file_lock():
                segments = self._segment_names()
                if len(segments) > 1:
                    threshold, self.max_segments = self.max_segments, 1
                    try:
                        self._compact_locked()
                    finally:
                        self.max_segments = threshold

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._index

    def close(self) -> None:
        """No persistent handles to release; kept for symmetry/future use."""

    def stats(self) -> Dict[str, object]:
        """Counters plus on-disk shape, for ``stats()`` / ``GET /stats``."""
        with self._lock:
            segments = self._segment_names()
            size = 0
            for name in segments:
                try:
                    size += os.path.getsize(self._segment_path(name))
                except OSError:
                    pass
            return {
                "directory": self.directory,
                "entries": len(self._index),
                "segments": len(segments),
                "bytes": size,
                "hits": self.hits,
                "misses": self.misses,
                "appends": self.appends,
                "replayed_records": self.replayed_records,
                "skipped_lines": self.skipped_lines,
                "compactions": self.compactions,
                "rebuilds": self.rebuilds,
            }
