"""Staged caches for the batched variant-evaluation engine.

Three cache stages, from coarsest to finest:

1. :class:`VariantCache` — fully evaluated :class:`Variant` objects keyed on
   the *canonical key* of their :class:`CompilerConfig`.  Configurations that
   compare equal (however they were constructed: directly, via ``with_`` or
   decoded from genes) share one entry, so revisited points of the search
   space cost a dictionary lookup across generations *and* across optimiser
   runs.
2. :class:`LoweringCache` — lowered IR programs keyed on the *AST-stage key*:
   the subset of configuration fields consumed before/during lowering
   (hardening, constant folding, inlining, unrolling).  Configurations that
   differ only in IR-level flags (CSE, DCE, strength reduction, peephole,
   SPM allocation)
   skip the clone/bound-inference/AST-pass/lowering pipeline entirely and
   receive an independent :meth:`Program.clone` to run their IR passes on.
3. :class:`AnalysisCache` — per-function worst-case cost tables keyed on a
   structural fingerprint of the analysed program.  One
   :class:`StructuralCostEngine` run computes every function's cycles (or
   joules) at once; every further WCET/WCEC query against the same program —
   other task entry points, other operating points (cycle counts are
   frequency-independent), the coordination layer's per-core sweeps — is a
   table lookup.

All three stages are exact: cached results are bit-for-bit identical to what
the uncached pipeline produces (covered by ``tests/test_engine.py``).

Every cache accepts an optional ``max_entries`` cap: when set, the
fingerprint/config-keyed tables evict their least-recently-used entries, and
each cache reports hit/miss/eviction counters through ``stats()`` — required
before long-running service use, where searches arrive indefinitely.  An
opt-in *process-wide* :class:`AnalysisCache` (see
:func:`enable_process_analysis_cache`) additionally lets every driver and
toolchain targeting the same platform share one set of WCET/WCEC tables,
which pays off in cross-scenario sweeps such as
``python -m repro.scenarios run --all --shared-cache``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.compiler.config import CompilerConfig
from repro.compiler.engine import persist as _persist
from repro.errors import AnalysisError
from repro.energy.static_analyzer import EnergyAnalyzer, WCECResult
from repro.hw.core import Core
from repro.hw.dvfs import OperatingPoint
from repro.hw.platform import Platform
from repro.ir.cfg import Program
from repro.ir.instructions import Opcode
from repro.ir.regions import (
    BlockRegion,
    IfRegion,
    LoopRegion,
    Region,
    SeqRegion,
)
from repro.wcet.analyzer import WCETAnalyzer, WCETResult
from repro.wcet.paths import PathSensitiveMixin, PathStats
from repro.wcet.structural import StructuralCostEngine

#: Attribute used to memoise a program's structural fingerprint.  The engine
#: computes it only after all IR passes have run; the IR is immutable from
#: then on as far as the evaluation pipeline is concerned.
_FINGERPRINT_ATTR = "_engine_fingerprint"

#: Local alias, avoids an attribute lookup in the block-cost hot loop.
_CALL_OPCODE = Opcode.CALL


#: Type of the key-derivation callables the caches accept: config -> tuple.
KeyFn = Callable[[CompilerConfig], Tuple]


def canonical_key(config: CompilerConfig) -> Tuple:
    """Canonical cache key of a configuration (stock pass list).

    Two configurations produce the same compiled variant iff their canonical
    keys are equal; the key is simply the ordered tuple of every field (each
    field toggles or parameterises exactly one pass).  The evaluation engine
    keys its caches through :class:`~repro.compiler.pipeline.PassManager`
    instead, so registered passes widen the keys automatically; this module-
    level derivation is the stock-pass-list equivalent kept for direct cache
    use and the batch deduplicator.
    """
    return (
        config.constant_folding,
        config.unroll_limit,
        config.inline_simple_functions,
        config.dead_code_elimination,
        config.strength_reduction,
        config.spm_allocation,
        config.harden_security,
        config.enable_cse,
        config.enable_peephole,
        config.path_sensitive,
    )


def ast_stage_key(config: CompilerConfig) -> Tuple:
    """Cache key of the AST-level pipeline stage.

    Only hardening, constant folding, inlining and unrolling run before the
    IR is produced (see :func:`repro.compiler.evaluate.lower_with_ast_passes`),
    so the lowered program is fully determined by these four fields.
    """
    return (
        config.constant_folding,
        config.unroll_limit,
        config.inline_simple_functions,
        config.harden_security,
    )


def pre_unroll_key(config: CompilerConfig) -> Tuple:
    """Cache key of the AST passes that run before unrolling."""
    return (
        config.constant_folding,
        config.inline_simple_functions,
        config.harden_security,
    )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of the three cache stages."""

    variant_hits: int = 0
    variant_misses: int = 0
    variant_evictions: int = 0
    lowering_hits: int = 0
    lowering_misses: int = 0
    lowering_evictions: int = 0
    ir_stage_hits: int = 0
    ir_stage_misses: int = 0
    ir_stage_evictions: int = 0
    analysis_hits: int = 0
    analysis_misses: int = 0
    analysis_evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "variant_hits": self.variant_hits,
            "variant_misses": self.variant_misses,
            "variant_evictions": self.variant_evictions,
            "lowering_hits": self.lowering_hits,
            "lowering_misses": self.lowering_misses,
            "lowering_evictions": self.lowering_evictions,
            "ir_stage_hits": self.ir_stage_hits,
            "ir_stage_misses": self.ir_stage_misses,
            "ir_stage_evictions": self.ir_stage_evictions,
            "analysis_hits": self.analysis_hits,
            "analysis_misses": self.analysis_misses,
            "analysis_evictions": self.analysis_evictions,
        }


class _BoundedCacheMixin:
    """Shared LRU plumbing: a ``max_entries`` cap plus counters.

    Subclasses keep their payloads in ``OrderedDict`` tables and route every
    read through :meth:`_touch` and every insert through :meth:`_insert`;
    with ``max_entries`` unset both are plain dictionary operations.
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _touch(self, table: "OrderedDict", key):
        """Read ``key``, refreshing its recency when the cache is bounded."""
        entry = table.get(key)
        if entry is not None and self.max_entries is not None:
            table.move_to_end(key)
        return entry

    def _insert(self, table: "OrderedDict", key, value) -> None:
        """Insert ``key``, evicting the least recently used beyond the cap."""
        table[key] = value
        if self.max_entries is not None:
            table.move_to_end(key)
            while len(table) > self.max_entries:
                table.popitem(last=False)
                self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class VariantCache(_BoundedCacheMixin):
    """Cross-generation cache of fully evaluated variants.

    ``key_fn`` overrides the key derivation (the engine passes its pass
    manager's ``canonical_key`` so the cache is keyed by the pass list).
    """

    def __init__(self, max_entries: Optional[int] = None,
                 key_fn: Optional[KeyFn] = None):
        super().__init__(max_entries)
        self._key = key_fn if key_fn is not None else canonical_key
        self._variants: "OrderedDict[Tuple, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._variants)

    def __contains__(self, config: CompilerConfig) -> bool:
        return self._key(config) in self._variants

    def get(self, config: CompilerConfig):
        variant = self._touch(self._variants, self._key(config))
        if variant is not None:
            self.hits += 1
        return variant

    def put(self, config: CompilerConfig, variant) -> None:
        self.misses += 1
        self._insert(self._variants, self._key(config), variant)


class LoweringCache(_BoundedCacheMixin):
    """Cache of lowered programs shared across IR-level flag combinations.

    Stores the pristine post-lowering program per AST-stage key; ``get``
    returns an independent clone so the caller's in-place IR passes cannot
    corrupt the cached original.  ``max_entries`` bounds the lowered and the
    pre-unroll tables independently (each holds at most that many entries).
    ``key_fn``/``pre_unroll_key_fn`` override the key derivations (the
    engine passes its pass manager's stage keys so the cache is keyed by
    the registered pass list).
    """

    def __init__(self, max_entries: Optional[int] = None,
                 key_fn: Optional[KeyFn] = None,
                 pre_unroll_key_fn: Optional[KeyFn] = None):
        super().__init__(max_entries)
        self._key = key_fn if key_fn is not None else ast_stage_key
        self._pre_unroll_key = (pre_unroll_key_fn
                                if pre_unroll_key_fn is not None
                                else pre_unroll_key)
        self._lowered: "OrderedDict[Tuple, Tuple[Program, Dict[str, int]]]" \
            = OrderedDict()
        self._pre_unroll: "OrderedDict[Tuple, Tuple]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._lowered)

    def stats(self) -> Dict[str, int]:
        # The pre-unroll table holds full cloned modules — report it
        # explicitly so operators sizing the cache see both tables.
        stats = super().stats()
        stats["pre_unroll_entries"] = len(self._pre_unroll)
        return stats

    def get_pre_unroll(self, config: CompilerConfig) -> Optional[Tuple]:
        """The cached (module, statistics) pair before unrolling, if any.

        The stored module is pristine — callers must clone it before
        mutating (the engine always unrolls a fresh clone).
        """
        return self._touch(self._pre_unroll, self._pre_unroll_key(config))

    def put_pre_unroll(self, config: CompilerConfig, module,
                       statistics: Dict[str, int]) -> None:
        self._insert(self._pre_unroll, self._pre_unroll_key(config),
                     (module, dict(statistics)))

    def get(self, config: CompilerConfig
            ) -> Optional[Tuple[Program, Dict[str, int]]]:
        entry = self._touch(self._lowered, self._key(config))
        if entry is None:
            return None
        self.hits += 1
        program, statistics = entry
        return program.clone(share_instructions=True), dict(statistics)

    def put(self, config: CompilerConfig, program: Program,
            statistics: Dict[str, int]) -> None:
        self.misses += 1
        # Keep a private pristine copy; the caller mutates its own clone.
        # Instruction sharing is safe: the IR passes are copy-on-write at
        # instruction granularity.
        self._insert(self._lowered, self._key(config),
                     (program.clone(share_instructions=True),
                      dict(statistics)))


class IrStageCache(_BoundedCacheMixin):
    """Cache of programs after the platform-independent IR passes.

    Keyed on the AST-stage key plus the IR-stage flags (CSE, DCE, strength
    reduction, peephole): the only remaining pass (scratchpad allocation)
    runs last, so configurations differing only in ``spm_allocation`` share
    everything up to here.  ``key_fn`` overrides the derivation (the engine
    passes its pass manager's post-IR stage key).
    """

    def __init__(self, max_entries: Optional[int] = None,
                 key_fn: Optional[KeyFn] = None):
        super().__init__(max_entries)
        self._key = key_fn if key_fn is not None else self.key
        self._programs: "OrderedDict[Tuple, Tuple[Program, Dict[str, int]]]" \
            = OrderedDict()

    def __len__(self) -> int:
        return len(self._programs)

    @staticmethod
    def key(config: CompilerConfig) -> Tuple:
        return ast_stage_key(config) + (config.enable_cse,
                                        config.dead_code_elimination,
                                        config.strength_reduction,
                                        config.enable_peephole,
                                        config.path_sensitive)

    def get(self, config: CompilerConfig
            ) -> Optional[Tuple[Program, Dict[str, int]]]:
        entry = self._touch(self._programs, self._key(config))
        if entry is None:
            return None
        self.hits += 1
        program, statistics = entry
        return program.clone(share_instructions=True), dict(statistics)

    def put(self, config: CompilerConfig, program: Program,
            statistics: Dict[str, int]) -> None:
        self.misses += 1
        self._insert(self._programs, self._key(config),
                     (program.clone(share_instructions=True),
                      dict(statistics)))


def _region_signature(region: Region) -> Tuple:
    """Cost-relevant serialisation of a region tree (labels and loop bounds)."""
    if isinstance(region, BlockRegion):
        return ("B", region.label)
    if isinstance(region, SeqRegion):
        return ("S",) + tuple(_region_signature(c) for c in region.children)
    if isinstance(region, IfRegion):
        return ("I", region.cond_label,
                _region_signature(region.then_region),
                _region_signature(region.else_region))
    if isinstance(region, LoopRegion):
        return ("L", region.cond_label, region.bound,
                _region_signature(region.body_region))
    raise TypeError(f"unknown region type {type(region)!r}")  # pragma: no cover


def program_fingerprint(program: Program) -> Tuple:
    """Structural fingerprint capturing everything the cost analyses read.

    Two programs with equal fingerprints have identical worst-case cost
    tables on any core of the platform: the fingerprint covers each
    function's placement (``code_region``), its region tree including loop
    bounds, and each block's instruction sequence (opcode, callee, accessed
    array).  Memoised on the program object — only fingerprint programs that
    will no longer be mutated.
    """
    cached = getattr(program, _FINGERPRINT_ATTR, None)
    if cached is not None:
        return cached
    functions = []
    for name, function in program.functions.items():
        blocks = []
        for label, block in function.blocks.items():
            # Enum members (not .value) keep this loop fast: accessing
            # Opcode.value goes through a descriptor on every instruction.
            signature = [label]
            signature.extend((instr.opcode, instr.callee, instr.array)
                             for instr in block.instrs)
            blocks.append(tuple(signature))
        functions.append((name, function.code_region, function.entry,
                          _region_signature(function.region), tuple(blocks)))
    fingerprint = tuple(functions)
    setattr(program, _FINGERPRINT_ATTR, fingerprint)
    return fingerprint


class _BlockMemoCostEngine(StructuralCostEngine):
    """Structural cost engine with a cross-program block-cost memo.

    The worst-case cost of a *call-free* basic block is a pure left-to-right
    sum of per-instruction costs, so identical instruction sequences cost
    exactly the same wherever they occur — across functions, programs and
    variants.  Blocks containing calls interleave callee costs into the sum
    and fall back to the uncached recursion.
    """

    def __init__(self, program, instr_cost, block_memo: Dict[Tuple, float]):
        super().__init__(program, instr_cost)
        self._block_memo = block_memo

    def _block_cost(self, function, label: str) -> float:
        block = function.block(label)
        opcodes = []
        for instr in block.instrs:
            opcode = instr.opcode
            if opcode is _CALL_OPCODE:
                return super()._block_cost(function, label)
            opcodes.append(opcode)
        key = (function.code_region, tuple(opcodes))
        cost = self._block_memo.get(key)
        if cost is None:
            cost = super()._block_cost(function, label)
            self._block_memo[key] = cost
        return cost


class _PathSensitiveBlockMemoEngine(PathSensitiveMixin, _BlockMemoCostEngine):
    """Block-memoised engine with infeasible-path pruning.

    Per-block worst-case costs are identical in both analysis modes, so the
    path-sensitive engines share the plain engines' block-cost memos.
    """


class AnalysisCache(_BoundedCacheMixin):
    """Shared per-function WCET/WCEC result tables, keyed by program structure.

    Bound to one :class:`Platform`.  The first WCET query for a (program,
    core) pair runs the structural cost engine over *every* function once and
    records per-function cycle bounds (plus the analysis errors of functions
    that legitimately have none, e.g. unreachable code with unbounded loops);
    likewise for energy per (program, core, operating point).  Subsequent
    queries are dictionary lookups, which makes multi-entry evaluation, DVFS
    sweeps and per-core ETS derivation nearly free.

    ``max_entries`` bounds the cycle and energy tables independently (the
    per-instruction and block-cost memos stay unbounded: they are keyed by
    opcode patterns, whose population is effectively fixed).

    ``store`` attaches a persistent tier
    (:class:`~repro.compiler.engine.persist.PersistentCacheStore`): memory
    misses consult the disk before computing, and computed tables are written
    through, so warm entries survive LRU eviction, process boundaries and
    restarts.  ``pass_list_key`` namespaces the on-disk digests (defaults to
    the stock pipeline's
    :func:`~repro.compiler.engine.persist.default_pass_list_key`).
    """

    def __init__(self, platform: Platform, max_entries: Optional[int] = None,
                 store: Optional["_persist.PersistentCacheStore"] = None,
                 pass_list_key: Optional[Tuple] = None):
        super().__init__(max_entries)
        self.platform = platform
        self._store = store
        self._pass_list_key = pass_list_key
        self.disk_hits = 0
        self.disk_misses = 0
        # Serialises lookups *and* fills: the LRU bookkeeping is a compound
        # read-modify-write over OrderedDicts, and the process-wide shared
        # cache is queried concurrently by the evaluation service's worker
        # threads.  Reentrant because ``wcec`` calls ``wcet``.
        self._lock = threading.RLock()
        self._checked: "OrderedDict[Tuple, bool]" = OrderedDict()
        self._cycle_tables: "OrderedDict[Tuple, Tuple[Dict[str, float], Dict[str, Exception]]]" = OrderedDict()
        self._energy_tables: "OrderedDict[Tuple, Tuple[Dict[str, float], Dict[str, Exception]]]" = OrderedDict()
        self._wcet_analyzers: Dict[str, WCETAnalyzer] = {}
        self._energy_analyzers: Dict[str, EnergyAnalyzer] = {}
        # Per-instruction cost memos.  A cycle cost depends only on the
        # opcode and the fetch region of the enclosing function; an energy
        # cost only on the opcode (and the operating point) — so each
        # distinct cost is computed once per core ever, not once per
        # instruction occurrence per program.
        self._cycle_costs: Dict[str, Dict[Tuple, float]] = {}
        self._energy_costs: Dict[Tuple, Dict[Tuple, float]] = {}
        # Cross-program block-cost memos (call-free blocks only).
        self._cycle_block_costs: Dict[str, Dict[Tuple, float]] = {}
        self._energy_block_costs: Dict[Tuple, Dict[Tuple, float]] = {}
        # Fingerprint -> digest memo for the persistent tier: canonicalising
        # a whole structural fingerprint costs more than one table analysis,
        # and every core/OPP table of a program shares the fingerprint — so
        # hash it once per program, not once per table.
        self._fingerprint_digests: Dict[Tuple, str] = {}
        # Path-feasibility counters, accumulated on computes only (memory and
        # disk hits reuse tables whose pruning already happened elsewhere).
        self._path_totals = PathStats()
        self._path_functions: Dict[str, PathStats] = {}

    def __len__(self) -> int:
        return len(self._cycle_tables) + len(self._energy_tables)

    def stats(self) -> Dict[str, int]:
        stats = super().stats()
        stats["disk_hits"] = self.disk_hits
        stats["disk_misses"] = self.disk_misses
        stats["persistent"] = self._store is not None
        stats["path_units"] = self._path_totals.units
        stats["paths_enumerated"] = self._path_totals.paths_enumerated
        stats["paths_pruned"] = self._path_totals.paths_pruned
        stats["path_cap_fallbacks"] = self._path_totals.cap_fallbacks
        stats["path_irregular_fallbacks"] = \
            self._path_totals.irregular_fallbacks
        return stats

    def path_stats(self) -> Dict[str, Dict[str, float]]:
        """Pruning counters of every path-sensitive analysis this cache ran.

        ``totals`` aggregates across functions; ``functions`` maps each
        analysed function to its own counters (paths enumerated / pruned,
        cap and irregular-flow fallbacks, enumeration wall time).
        """
        with self._lock:
            return {
                "totals": self._path_totals.as_dict(),
                "functions": {name: stats.as_dict()
                              for name, stats in self._path_functions.items()},
            }

    def _note_path_stats(self, engine: "_PathSensitiveBlockMemoEngine") -> None:
        """Fold one engine run's pruning counters into the cache's totals."""
        for name, stats in engine.path_stats.items():
            if stats.units == 0:
                continue
            self._path_totals.merge(stats)
            per_function = self._path_functions.get(name)
            if per_function is None:
                self._path_functions[name] = per_function = PathStats()
            per_function.merge(stats)

    # -- persistent tier -------------------------------------------------------
    def _table_digest(self, kind: str, fingerprint: Tuple, *scope: str) -> str:
        """On-disk key of one result table: platform + pass list + scope.

        The structural fingerprint enters through its own memoised digest
        (hashed once per program; every per-core/per-OPP table reuses it),
        combined with the platform name, the pass-list key and the
        analysis-kind/core/operating-point discriminators the in-memory
        tables key on.
        """
        if self._pass_list_key is None:
            self._pass_list_key = _persist.default_pass_list_key()
        digest = self._fingerprint_digests.get(fingerprint)
        if digest is None:
            digest = _persist.key_digest(fingerprint)
            self._fingerprint_digests[fingerprint] = digest
        return _persist.key_digest("analysis", self.platform.name,
                                   self._pass_list_key, kind, list(scope),
                                   digest)

    def _disk_get(self, digest: str):
        """Decode a persisted table, or ``None`` (undecodable counts a miss)."""
        payload = self._store.get(digest)
        if payload is not None:
            try:
                entry = _persist.decode_analysis_entry(payload)
            except _persist.PersistError:
                payload = None
            else:
                self.disk_hits += 1
                return entry
        self.disk_misses += 1
        return None

    # -- analyzer instances (cost models are deterministic per core) ----------
    def _default_core(self) -> Core:
        core = next(iter(self.platform.predictable_cores), None)
        if core is None:
                raise AnalysisError(
                f"platform {self.platform.name!r} has no predictable core; use "
                f"the dynamic profiling workflow for complex architectures")
        return core

    def _wcet_analyzer(self, core: Core) -> WCETAnalyzer:
        analyzer = self._wcet_analyzers.get(core.name)
        if analyzer is None:
            analyzer = WCETAnalyzer(self.platform, core=core)
            self._wcet_analyzers[core.name] = analyzer
        return analyzer

    def _energy_analyzer(self, core: Core) -> EnergyAnalyzer:
        analyzer = self._energy_analyzers.get(core.name)
        if analyzer is None:
            analyzer = EnergyAnalyzer(self.platform, core=core)
            self._energy_analyzers[core.name] = analyzer
        return analyzer

    # -- shared validation ----------------------------------------------------
    def _check_analysable(self, program: Program, fingerprint: Tuple) -> None:
        """``validate()`` + recursion check, once per distinct program.

        The recursion check is an iterative three-colour DFS over the call
        graph — same verdict as ``Program.has_recursion()`` without paying
        for a networkx graph per program.
        """
        if self._touch(self._checked, fingerprint):
            return
        program.validate()
        callees = {name: function.callees()
                   for name, function in program.functions.items()}
        state: Dict[str, int] = {}  # 1 = on stack, 2 = done
        for root in callees:
            if state.get(root):
                continue
            stack = [(root, iter(callees[root]))]
            state[root] = 1
            while stack:
                name, remaining = stack[-1]
                advanced = False
                for callee in remaining:
                    mark = state.get(callee)
                    if mark == 1:
                        raise AnalysisError(
                            "programs with recursion are not analysable")
                    if mark is None and callee in callees:
                        state[callee] = 1
                        stack.append((callee, iter(callees[callee])))
                        advanced = True
                        break
                if not advanced:
                    state[name] = 2
                    stack.pop()
        # Bounded like the result tables, but eviction only means a future
        # re-validation, so it is not reported in the eviction counter.
        self._checked[fingerprint] = True
        if self.max_entries is not None and len(self._checked) > self.max_entries:
            self._checked.popitem(last=False)

    # -- cost tables ------------------------------------------------------------
    def _cycles(self, program: Program, core: Core,
                path_sensitive: bool = False
                ) -> Tuple[Dict[str, float], Dict[str, Exception]]:
        fingerprint = program_fingerprint(program)
        # The default-mode key (and on-disk digest) is unchanged; the
        # path-sensitive tables live under a widened key so both modes can
        # coexist without invalidating archived entries.
        key = ((fingerprint, core.name, "paths") if path_sensitive
               else (fingerprint, core.name))
        entry = self._touch(self._cycle_tables, key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        digest = None
        if self._store is not None:
            scope = (core.name, "paths") if path_sensitive else (core.name,)
            digest = self._table_digest("cycles", fingerprint, *scope)
            entry = self._disk_get(digest)
            if entry is not None:
                # A disk hit was validated by whichever process computed it,
                # exactly like a memory hit skips re-validation.
                self._insert(self._cycle_tables, key, entry)
                return entry
        self._check_analysable(program, fingerprint)
        analyzer = self._wcet_analyzer(core)
        memo = self._cycle_costs.setdefault(core.name, {})

        def instr_cycles(function, instr):
            memo_key = (function.code_region, instr.opcode)
            cost = memo.get(memo_key)
            if cost is None:
                cost = analyzer._instr_cycles(function, instr)
                memo[memo_key] = cost
            return cost

        block_memo = self._cycle_block_costs.setdefault(core.name, {})
        engine = (_PathSensitiveBlockMemoEngine(program, instr_cycles,
                                                block_memo)
                  if path_sensitive
                  else _BlockMemoCostEngine(program, instr_cycles, block_memo))
        table: Dict[str, float] = {}
        errors: Dict[str, Exception] = {}
        for name in program.functions:
            try:
                table[name] = engine.function_cost(name)
            except AnalysisError as error:
                # Functions not reachable from an entry may legitimately
                # lack loop bounds; they simply don't get a standalone bound.
                errors[name] = error
        if path_sensitive:
            self._note_path_stats(engine)
        entry = (table, errors)
        self._insert(self._cycle_tables, key, entry)
        if digest is not None:
            self._store.put(digest, _persist.encode_analysis_entry(entry))
        return entry

    def _energy(self, program: Program, core: Core, opp: OperatingPoint,
                path_sensitive: bool = False
                ) -> Tuple[Dict[str, float], Dict[str, Exception]]:
        fingerprint = program_fingerprint(program)
        key = ((fingerprint, core.name, opp.label, "paths") if path_sensitive
               else (fingerprint, core.name, opp.label))
        entry = self._touch(self._energy_tables, key)
        if entry is not None:
            self.hits += 1
            return entry
        self.misses += 1
        digest = None
        if self._store is not None:
            scope = ((core.name, opp.label, "paths") if path_sensitive
                     else (core.name, opp.label))
            digest = self._table_digest("energy", fingerprint, *scope)
            entry = self._disk_get(digest)
            if entry is not None:
                self._insert(self._energy_tables, key, entry)
                return entry
        self._check_analysable(program, fingerprint)
        analyzer = self._energy_analyzer(core)
        memo = self._energy_costs.setdefault((core.name, opp.label), {})

        def instr_energy(function, instr):
            cost = memo.get(instr.opcode)
            if cost is None:
                cost = analyzer._instr_energy(function, instr, opp)
                memo[instr.opcode] = cost
            return cost

        block_memo = self._energy_block_costs.setdefault(
            (core.name, opp.label), {})
        engine = (_PathSensitiveBlockMemoEngine(program, instr_energy,
                                                block_memo)
                  if path_sensitive
                  else _BlockMemoCostEngine(program, instr_energy, block_memo))
        table: Dict[str, float] = {}
        errors: Dict[str, Exception] = {}
        for name in program.functions:
            try:
                table[name] = engine.function_cost(name)
            except AnalysisError as error:
                errors[name] = error
        if path_sensitive:
            self._note_path_stats(engine)
        entry = (table, errors)
        self._insert(self._energy_tables, key, entry)
        if digest is not None:
            self._store.put(digest, _persist.encode_analysis_entry(entry))
        return entry

    @staticmethod
    def _entry_cost(program: Program, function_name: str,
                    table: Dict[str, float],
                    errors: Dict[str, Exception]) -> float:
        if function_name in table:
            return table[function_name]
        if function_name in errors:
            raise errors[function_name]
        # Unknown function: raise the same error the engine would have.
        program.function(function_name)
        raise KeyError(function_name)  # pragma: no cover - function() raises

    # -- public API mirroring the stock analysers ------------------------------
    def wcet(self, program: Program, function_name: str,
             core: Optional[Core] = None,
             opp: Optional[OperatingPoint] = None,
             path_sensitive: bool = False) -> WCETResult:
        """Cached equivalent of ``WCETAnalyzer(...).analyze(...)``.

        ``path_sensitive`` enables infeasible-path pruning
        (:mod:`repro.wcet.paths`); its tables are cached independently of
        the default mode's.
        """
        core = core or self._default_core()
        opp = opp or core.nominal_opp
        with self._lock:
            table, errors = self._cycles(program, core,
                                         path_sensitive=path_sensitive)
        cycles = self._entry_cost(program, function_name, table, errors)
        return WCETResult(
            function=function_name,
            cycles=cycles,
            time_s=core.time_for_cycles(cycles, opp),
            frequency_hz=opp.frequency_hz,
            per_function_cycles=dict(table),
        )

    def wcec(self, program: Program, function_name: str,
             core: Optional[Core] = None,
             opp: Optional[OperatingPoint] = None,
             path_sensitive: bool = False) -> WCECResult:
        """Cached equivalent of ``EnergyAnalyzer(...).analyze(...)``.

        With ``path_sensitive`` both the dynamic-energy maximisation and the
        WCET bound behind the static-leakage term prune infeasible paths.
        """
        core = core or self._default_core()
        opp = opp or core.nominal_opp
        with self._lock:
            table, errors = self._energy(program, core, opp,
                                         path_sensitive=path_sensitive)
            dynamic = self._entry_cost(program, function_name, table, errors)
            wcet_result = self.wcet(program, function_name, core=core, opp=opp,
                                    path_sensitive=path_sensitive)
            analyzer = self._energy_analyzer(core)
        static = analyzer.model.static_power(opp) * wcet_result.time_s
        return WCECResult(
            function=function_name,
            dynamic_energy_j=dynamic,
            static_energy_j=static,
            wcet_time_s=wcet_result.time_s,
            frequency_hz=opp.frequency_hz,
        )


# ---------------------------------------------------------------------------
# Opt-in process-wide analysis cache
# ---------------------------------------------------------------------------
#: Default bound of the process-wide analysis caches: large enough for a
#: full cross-scenario sweep, small enough to cap a long-running service.
PROCESS_CACHE_DEFAULT_MAX_ENTRIES = 256

_process_cache_max_entries: Optional[int] = None
_process_cache_enabled = False
_process_analysis_caches: Dict[str, AnalysisCache] = {}
_process_cache_store: Optional["_persist.PersistentCacheStore"] = None
#: Guards creation of the per-platform shared caches: worker threads of the
#: evaluation service may race to instantiate the cache for one platform.
_process_cache_lock = threading.Lock()


def enable_process_analysis_cache(
        max_entries: Optional[int] = PROCESS_CACHE_DEFAULT_MAX_ENTRIES,
        cache_dir: Optional[str] = None) -> None:
    """Turn on the process-wide, per-platform shared :class:`AnalysisCache`.

    While enabled, every toolchain and compiler driver created afterwards
    shares one bounded analysis cache per platform *name* (presets are
    deterministic, so equal names imply equal cost models), letting
    cross-scenario runs reuse WCET/WCEC tables across drivers.  Strictly
    opt-in: per-instance caches remain the default.

    ``cache_dir`` additionally attaches a persistent
    :class:`~repro.compiler.engine.persist.PersistentCacheStore` under the
    shared caches, so WCET/WCEC tables survive LRU eviction, process
    boundaries (``ProcessPoolExecutor`` workers forked afterwards inherit
    the enablement and open their own handle on the same directory) and
    restarts.  Re-enabling with a different directory re-attaches; caches
    created before the call keep whatever store they were built with.
    Raises :class:`~repro.compiler.engine.persist.PersistError` when the
    directory is unusable.
    """
    global _process_cache_enabled, _process_cache_max_entries
    global _process_cache_store
    with _process_cache_lock:
        _process_cache_max_entries = max_entries
        if cache_dir is not None:
            directory = _persist.validate_cache_dir(cache_dir)
            if (_process_cache_store is None
                    or _process_cache_store.directory != directory):
                if _process_cache_store is not None:
                    _process_cache_store.close()
                _process_cache_store = _persist.PersistentCacheStore(directory)
                # Platform caches bind their store at construction; drop any
                # built before the directory was known so the next lookup
                # rebuilds them on top of the persistent tier.
                _process_analysis_caches.clear()
        _process_cache_enabled = True


def disable_process_analysis_cache(clear: bool = True) -> None:
    """Turn the process-wide cache off (and by default drop its contents)."""
    global _process_cache_enabled, _process_cache_store
    _process_cache_enabled = False
    if clear:
        with _process_cache_lock:
            _process_analysis_caches.clear()
            if _process_cache_store is not None:
                _process_cache_store.close()
                _process_cache_store = None


def process_analysis_cache_enabled() -> bool:
    """Whether the process-wide shared analysis cache is currently on.

    Lets scoped owners (e.g. the evaluation service) enable the cache for
    their lifetime and restore the previous state on shutdown instead of
    unconditionally disabling a cache someone else turned on.
    """
    return _process_cache_enabled


def process_analysis_cache(platform: Platform) -> Optional[AnalysisCache]:
    """The shared cache for ``platform``, or ``None`` when disabled.

    Also returns ``None`` for a platform that *names* a cached one but is
    structurally different (e.g. a customised preset keeping the stock
    name): its cost model would not match the cached analyzers, so the
    caller falls back to a private cache instead of silently reusing wrong
    WCET/WCEC tables.
    """
    if not _process_cache_enabled:
        return None
    with _process_cache_lock:
        cache = _process_analysis_caches.get(platform.name)
        if cache is None:
            cache = AnalysisCache(platform,
                                  max_entries=_process_cache_max_entries,
                                  store=_process_cache_store)
            _process_analysis_caches[platform.name] = cache
            return cache
    if cache.platform is not platform and cache.platform != platform:
        return None
    return cache


def process_analysis_cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-platform counters of the process-wide analysis caches."""
    with _process_cache_lock:
        caches = list(_process_analysis_caches.items())
    return {name: cache.stats() for name, cache in caches}


def process_cache_store() -> Optional["_persist.PersistentCacheStore"]:
    """The persistent store behind the process-wide cache, if attached."""
    with _process_cache_lock:
        return _process_cache_store


def process_cache_store_stats() -> Optional[Dict[str, object]]:
    """Counters of the persistent tier, or ``None`` when not attached."""
    store = process_cache_store()
    return None if store is None else store.stats()
