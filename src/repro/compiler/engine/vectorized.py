"""Numpy-vectorised multi-objective machinery.

The seed implementations of :func:`non_dominated_sort`,
:func:`crowding_distance` and :func:`pareto_front` walked Python double loops
over ``Variant.dominates`` — O(N² · K) interpreted float comparisons per
generation.  Here the whole pairwise dominance relation is computed in one
broadcasted comparison over the (N, K) objective matrix::

    leq[i, j]  =  all_k  F[i, k] <= F[j, k]
    lt[i, j]   =  any_k  F[i, k] <  F[j, k]
    D[i, j]    =  leq[i, j] and lt[i, j]          # i dominates j

Everything downstream (front peeling, crowding, archive filtering) consumes
``D`` with cheap vector reductions.  The results are **exactly** those of the
pure-Python references kept in :mod:`repro.compiler.engine.reference` —
including front ordering, stable tie-breaking in the crowding sort and
first-occurrence-wins deduplication — so the optimisers' Pareto archives are
bit-for-bit unchanged for fixed seeds (property-tested in
``tests/test_properties.py``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import CompilationError


def objectives_matrix(variants: Sequence) -> np.ndarray:
    """The (N, K) objective matrix of ``variants`` (anything with .objectives()).

    Raises :class:`CompilationError` when the variants carry different
    objective sets, mirroring ``Variant.dominates``.
    """
    rows = [variant.objectives() for variant in variants]
    if not rows:
        return np.empty((0, 0))
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise CompilationError(
            "cannot compare variants with different objective sets")
    return np.asarray(rows, dtype=float)


def dominance_matrix(objectives: np.ndarray) -> np.ndarray:
    """Boolean (N, N) matrix where ``[i, j]`` means *i* dominates *j*."""
    if objectives.size == 0:
        count = objectives.shape[0]
        return np.zeros((count, count), dtype=bool)
    less_equal = (objectives[:, None, :] <= objectives[None, :, :]).all(axis=2)
    strictly_less = (objectives[:, None, :] < objectives[None, :, :]).any(axis=2)
    return less_equal & strictly_less


def non_dominated_sort(variants: Sequence) -> List[List[int]]:
    """Indices of ``variants`` grouped into successive non-dominated fronts.

    Drop-in replacement for the reference implementation: the pairwise
    dominance checks are one broadcasted numpy comparison, the front peeling
    preserves the reference's exact ordering within each front.
    """
    count = len(variants)
    if count == 0:
        return []
    dominates = dominance_matrix(objectives_matrix(variants))
    # domination_count[j] = how many variants dominate j.
    domination_count = dominates.sum(axis=0).astype(np.int64)

    fronts: List[List[int]] = []
    current = np.flatnonzero(domination_count == 0)
    while current.size:
        fronts.append(current.tolist())
        next_front: List[int] = []
        for i in current:
            # Mirrors the reference: walk i's dominated set in ascending
            # index order, releasing j once its last dominator is processed.
            dominated = np.flatnonzero(dominates[i])
            domination_count[dominated] -= 1
            next_front.extend(
                int(j) for j in dominated[domination_count[dominated] == 0])
        current = np.asarray(next_front, dtype=np.int64)
    return fronts


def crowding_distance(variants: Sequence,
                      front: Sequence[int]) -> Dict[int, float]:
    """Crowding distance of each index in ``front`` (NSGA-II diversity)."""
    distance = {int(i): 0.0 for i in front}
    if not front:
        return distance
    indices = np.asarray(list(front), dtype=np.int64)
    objectives = objectives_matrix([variants[i] for i in indices])
    values = np.zeros(len(indices), dtype=float)
    for objective in range(objectives.shape[1]):
        column = objectives[:, objective]
        # Stable sort matches the reference's `sorted(front, key=...)`
        # tie-breaking (original front order preserved among equals).
        order = np.argsort(column, kind="stable")
        low, high = column[order[0]], column[order[-1]]
        values[order[0]] = values[order[-1]] = np.inf
        if high == low:
            continue
        spread = (column[order[2:]] - column[order[:-2]]) / (high - low)
        values[order[1:-1]] += spread
    for position, index in enumerate(indices):
        distance[int(index)] = float(values[position])
    return distance


def pareto_front(variants: Sequence) -> List:
    """Non-dominated subset of ``variants`` (first occurrence wins on ties)."""
    count = len(variants)
    if count == 0:
        return []
    dominates = dominance_matrix(objectives_matrix(variants))
    non_dominated = ~dominates.any(axis=0)
    front: List = []
    seen_objectives = set()
    for index in np.flatnonzero(non_dominated):
        candidate = variants[index]
        key = tuple(candidate.objectives())
        if key in seen_objectives:
            continue
        seen_objectives.add(key)
        front.append(candidate)
    return front
