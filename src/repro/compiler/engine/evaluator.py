"""The evaluation engine: single entry point for variant evaluation.

An :class:`EvaluationEngine` binds one source module, one platform/core/OPP
and one optional security evaluator, and evaluates compiler configurations
against them through the staged caches of
:mod:`repro.compiler.engine.cache`:

* the variant cache short-circuits revisited configurations entirely,
* the lowering cache shares the lowered IR between configurations that
  differ only in IR-level flags,
* the analysis cache shares per-function WCET/WCEC tables between every
  query against the same compiled program (multiple task entries, DVFS
  sweeps, per-core ETS derivation).

With ``entry_functions`` naming a single function the engine produces the
same variants as :func:`repro.compiler.evaluate.evaluate_config`; with
several it produces the aggregate all-tasks variants the predictable
toolchain optimises (sum of per-entry WCET/energy, entry ``"<all tasks>"``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.compiler.config import CompilerConfig
from repro.compiler.engine.cache import (
    AnalysisCache,
    CacheStats,
    IrStageCache,
    LoweringCache,
    VariantCache,
)
from repro.compiler.evaluate import SecurityEvaluator, Variant
from repro.compiler.passes.spm import INSTRUCTION_BYTES
from repro.compiler.pipeline import ANALYSIS_PASS, CompilationPipeline
from repro.errors import CompilationError
from repro.frontend import ast_nodes as ast
from repro.hw.core import Core
from repro.hw.dvfs import OperatingPoint
from repro.hw.platform import Platform
from repro.ir.cfg import Program

#: Entry-function label of aggregate multi-task variants.
ALL_TASKS_ENTRY = "<all tasks>"


class EvaluationEngine:
    """Evaluates compiler configurations with shared analysis caching."""

    def __init__(self, module: ast.SourceModule, platform: Platform,
                 entry_functions: Sequence[str],
                 core: Optional[Core] = None,
                 opp: Optional[OperatingPoint] = None,
                 security_evaluator: Optional[SecurityEvaluator] = None,
                 analysis_cache: Optional[AnalysisCache] = None,
                 lowering_cache: Optional[LoweringCache] = None,
                 variant_cache: Optional[VariantCache] = None,
                 pipeline: Optional[CompilationPipeline] = None,
                 aggregate: bool = False):
        if not entry_functions:
            raise CompilationError("engine needs at least one entry function")
        self.module = module
        self.platform = platform
        self.entry_functions = list(entry_functions)
        #: Aggregate mode always produces "<all tasks>" variants (summed ETS
        #: over the entries, no security objective), matching the predictable
        #: toolchain's whole-application evaluation even for one task.
        self.aggregate = aggregate
        self.core = core
        self.opp = opp
        self.security_evaluator = security_evaluator
        #: The compile path: every stage the engine caches runs through the
        #: pipeline's registered pass list (drivers share one pipeline across
        #: their engines so per-pass timings aggregate per driver).
        self.pipeline = (pipeline if pipeline is not None
                         else CompilationPipeline(platform))
        # Caches can be shared across engines: the analysis cache is safe to
        # share platform-wide, the lowering/variant caches are per-module (and
        # per security context for the variant cache).  Compare against None
        # explicitly: the caches define __len__, so an empty shared cache is
        # falsy and `or` would silently discard it.  Engine-built caches are
        # keyed by the pipeline's pass list, so registering a new
        # configurable pass widens every stage key automatically.
        self.analysis = (analysis_cache if analysis_cache is not None
                         else AnalysisCache(platform))
        self.lowering = (lowering_cache if lowering_cache is not None
                         else self.pipeline.lowering_cache())
        self.ir_stage = self.pipeline.ir_stage_cache()
        self.variants = (variant_cache if variant_cache is not None
                         else self.pipeline.variant_cache())

    # -- statistics ------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            variant_hits=self.variants.hits,
            variant_misses=self.variants.misses,
            variant_evictions=self.variants.evictions,
            lowering_hits=self.lowering.hits,
            lowering_misses=self.lowering.misses,
            lowering_evictions=self.lowering.evictions,
            ir_stage_hits=self.ir_stage.hits,
            ir_stage_misses=self.ir_stage.misses,
            ir_stage_evictions=self.ir_stage.evictions,
            analysis_hits=self.analysis.hits,
            analysis_misses=self.analysis.misses,
            analysis_evictions=self.analysis.evictions,
        )

    # -- pipeline stages ---------------------------------------------------------
    def _build(self, config: CompilerConfig):
        """Lower and optimise through the staged caches.

        Stage order (each stage's cache key subsumes the previous one's):
        lowering (AST-stage key) → platform-independent IR passes (+ DCE/SR
        flags) → scratchpad allocation (per variant, runs last).
        """
        staged = self.ir_stage.get(config)
        if staged is None:
            lowered = self.lowering.get(config)
            if lowered is None:
                program, statistics = self._lower(config)
                self.lowering.put(config, program, statistics)
            else:
                program, statistics = lowered
            statistics.update(self.pipeline.ir_passes(program, config))
            self.ir_stage.put(config, program, statistics)
        else:
            program, statistics = staged
        statistics.update(self.pipeline.backend_passes(program, config))
        return program, statistics

    def _lower(self, config: CompilerConfig):
        """AST passes + lowering, sharing the pre-unroll module when possible."""
        pre = self.lowering.get_pre_unroll(config)
        if pre is None:
            working, statistics = self.pipeline.pre_unroll(self.module, config)
            self.lowering.put_pre_unroll(config, working, statistics)
        else:
            working, statistics = pre
            statistics = dict(statistics)
        # The cached pre-unroll module stays pristine: unrolling (and, for
        # hygiene, lowering) always operates on a private clone.
        working = ast.clone_module(working)
        return (self.pipeline.unroll_and_lower(working, config, statistics),
                statistics)

    def _analyse(self, config: CompilerConfig, program: Program,
                 statistics: Dict[str, int], name: Optional[str]) -> Variant:
        for entry in self.entry_functions:
            if entry not in program.functions:
                raise CompilationError(
                    f"entry function {entry!r} not found")
        total_cycles = 0.0
        total_time = 0.0
        total_energy = 0.0
        # One analysis invocation per newly built variant (cache-served
        # queries inside still count toward its wall time — that is the
        # stage's real cost as seen by the build).
        with self.pipeline.manager.timed(ANALYSIS_PASS):
            for entry in self.entry_functions:
                wcet = self.analysis.wcet(program, entry, core=self.core,
                                          opp=self.opp,
                                          path_sensitive=config.path_sensitive)
                wcec = self.analysis.wcec(program, entry, core=self.core,
                                          opp=self.opp,
                                          path_sensitive=config.path_sensitive)
                total_cycles += wcet.cycles
                total_time += wcet.time_s
                total_energy += wcec.energy_j

        single_entry = (self.entry_functions[0]
                        if len(self.entry_functions) == 1 and not self.aggregate
                        else None)
        security = None
        if single_entry is not None and self.security_evaluator is not None:
            security = self.security_evaluator(program, single_entry)

        return Variant(
            name=name or config.short_name(),
            config=config,
            program=program,
            entry_function=single_entry or ALL_TASKS_ENTRY,
            wcet_cycles=total_cycles,
            wcet_time_s=total_time,
            energy_j=total_energy,
            code_size_bytes=program.total_instructions * INSTRUCTION_BYTES,
            security_level=security,
            pass_statistics=statistics,
        )

    # -- public API -----------------------------------------------------------------
    def evaluate(self, config: CompilerConfig,
                 name: Optional[str] = None) -> Variant:
        """Evaluate one configuration (cached)."""
        cached = self.variants.get(config)
        if cached is not None:
            return cached
        program, statistics = self._build(config)
        variant = self._analyse(config, program, statistics, name)
        self.variants.put(config, variant)
        return variant

