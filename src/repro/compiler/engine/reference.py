"""Pure-Python reference implementations of the Pareto machinery.

These are the seed repository's original O(N²) double-loop implementations,
retained verbatim as the behavioural oracle for the numpy-vectorised versions
in :mod:`repro.compiler.engine.vectorized`.  The property tests in
``tests/test_properties.py`` assert exact agreement (front composition *and*
ordering, crowding tie-breaking, deduplication) on random objective vectors;
the optimisers themselves only ever call the vectorised versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import CompilationError


@dataclass
class ObjectivePoint:
    """A minimal stand-in for :class:`Variant` carrying only objectives.

    Useful for exercising the Pareto machinery on raw objective vectors
    (property tests, benchmarks) without building compiled variants.
    """

    values: Tuple[float, ...]

    def objectives(self) -> Tuple[float, ...]:
        return self.values

    def dominates(self, other: "ObjectivePoint") -> bool:
        mine, theirs = self.objectives(), other.objectives()
        if len(mine) != len(theirs):
            raise CompilationError(
                "cannot compare variants with different objective sets")
        return (all(a <= b for a, b in zip(mine, theirs))
                and any(a < b for a, b in zip(mine, theirs)))


def non_dominated_sort_reference(variants: Sequence) -> List[List[int]]:
    """Indices of ``variants`` grouped into successive non-dominated fronts."""
    count = len(variants)
    dominated_by: List[List[int]] = [[] for _ in range(count)]
    domination_count = [0] * count
    fronts: List[List[int]] = [[]]

    for i in range(count):
        for j in range(count):
            if i == j:
                continue
            if variants[i].dominates(variants[j]):
                dominated_by[i].append(j)
            elif variants[j].dominates(variants[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [front for front in fronts if front]


def crowding_distance_reference(variants: Sequence,
                                front: Sequence[int]) -> Dict[int, float]:
    """Crowding distance of each index in ``front``."""
    distance = {i: 0.0 for i in front}
    if not front:
        return distance
    objective_count = len(variants[front[0]].objectives())
    for objective in range(objective_count):
        ordered = sorted(front, key=lambda i: variants[i].objectives()[objective])
        low = variants[ordered[0]].objectives()[objective]
        high = variants[ordered[-1]].objectives()[objective]
        distance[ordered[0]] = distance[ordered[-1]] = float("inf")
        if high == low:
            continue
        for position in range(1, len(ordered) - 1):
            previous = variants[ordered[position - 1]].objectives()[objective]
            following = variants[ordered[position + 1]].objectives()[objective]
            distance[ordered[position]] += (following - previous) / (high - low)
    return distance


def pareto_front_reference(variants: Sequence) -> List:
    """Non-dominated subset of ``variants`` (first occurrence wins on ties)."""
    front: List = []
    for candidate in variants:
        if any(other.dominates(candidate) for other in variants
               if other is not candidate):
            continue
        if any(existing.objectives() == candidate.objectives()
               for existing in front):
            continue
        front.append(candidate)
    return front
