"""Building and evaluating compiled variants.

A *variant* is the result of compiling the application under one
:class:`CompilerConfig`: the lowered IR plus its statically analysed ETS
properties (WCET, worst-case energy, optional security level, code size).
The multi-objective search only ever talks to :func:`evaluate_config`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.compiler.config import CompilerConfig
from repro.compiler.passes.ast_passes import (
    fold_constants,
    inline_simple_functions,
    unroll_loops,
)
from repro.compiler.passes.ir_passes import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    peephole_optimize,
    strength_reduce,
)
from repro.compiler.passes.spm import INSTRUCTION_BYTES, allocate_scratchpad
from repro.energy.static_analyzer import EnergyAnalyzer
from repro.errors import CompilationError
from repro.frontend import ast_nodes as ast
from repro.frontend.lowering import lower_module
from repro.hw.core import Core
from repro.hw.dvfs import OperatingPoint
from repro.hw.platform import Platform
from repro.ir.cfg import Program
from repro.security.transforms import harden_module
from repro.wcet.analyzer import WCETAnalyzer
from repro.wcet.loopbounds import infer_loop_bounds

#: Optional callback scoring the security level of a compiled program.
SecurityEvaluator = Callable[[Program, str], float]


@dataclass
class Variant:
    """A compiled program together with its analysed ETS properties."""

    name: str
    config: CompilerConfig
    program: Program
    entry_function: str
    wcet_cycles: float
    wcet_time_s: float
    energy_j: float
    code_size_bytes: int
    security_level: Optional[float] = None
    pass_statistics: Dict[str, int] = field(default_factory=dict)

    # -- multi-objective helpers -------------------------------------------------
    def objectives(self) -> Tuple[float, ...]:
        """Objective vector to *minimise*: (time, energy[, insecurity])."""
        values = [self.wcet_time_s, self.energy_j]
        if self.security_level is not None:
            values.append(1.0 - self.security_level)
        return tuple(values)

    def dominates(self, other: "Variant") -> bool:
        """Pareto dominance on the objective vector (all ≤, at least one <)."""
        mine, theirs = self.objectives(), other.objectives()
        if len(mine) != len(theirs):
            raise CompilationError(
                "cannot compare variants with different objective sets")
        return (all(a <= b for a, b in zip(mine, theirs))
                and any(a < b for a, b in zip(mine, theirs)))

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "config": self.config.short_name(),
            "wcet_cycles": self.wcet_cycles,
            "wcet_ms": self.wcet_time_s * 1e3,
            "energy_uJ": self.energy_j * 1e6,
            "code_bytes": self.code_size_bytes,
            "security": self.security_level,
        }


def apply_pre_unroll_passes(module: ast.SourceModule, config: CompilerConfig
                            ) -> Tuple[ast.SourceModule, Dict[str, int]]:
    """Loop-bound inference plus the AST passes that run before unrolling.

    Only hardening, constant folding and inlining are consumed here, so the
    result is shared between configurations differing in ``unroll_limit``.
    The input module is never modified; the returned module is a fresh clone.
    """
    working = ast.clone_module(module)
    statistics: Dict[str, int] = {}

    infer_loop_bounds(working)
    if config.harden_security:
        working, hardening = harden_module(working)
        statistics["hardened_branches"] = hardening.transformed_count
    if config.constant_folding:
        statistics["constant_folds"] = fold_constants(working)
    if config.inline_simple_functions:
        statistics["inlined_calls"] = inline_simple_functions(working)
    return working, statistics


def unroll_and_lower(working: ast.SourceModule, config: CompilerConfig,
                     statistics: Dict[str, int]) -> Program:
    """Unroll (mutating ``working`` in place) and lower to IR."""
    if config.unroll_limit:
        statistics["unrolled_loops"] = unroll_loops(working, config.unroll_limit)
        if config.constant_folding:
            statistics["constant_folds"] = (statistics.get("constant_folds", 0)
                                            + fold_constants(working))
    return lower_module(working)


def lower_with_ast_passes(module: ast.SourceModule, config: CompilerConfig
                          ) -> Tuple[Program, Dict[str, int]]:
    """Run the AST-level passes selected by ``config`` and lower to IR.

    Only the AST-level knobs of ``config`` (security hardening, constant
    folding, inlining, unrolling) influence the result — the IR-level passes
    run separately in :func:`run_ir_passes`.  This split is what lets the
    evaluation engine share one lowered program between configurations that
    differ only in IR-level flags.

    The input module is never modified; every build starts from a fresh clone.
    """
    working, statistics = apply_pre_unroll_passes(module, config)
    return unroll_and_lower(working, config, statistics), statistics


def run_ir_optimisations(program: Program,
                         config: CompilerConfig) -> Dict[str, int]:
    """Run the platform-independent IR passes in pipeline order.

    CSE first (recomputations become copies while their producers are
    live), then DCE and strength reduction in their historical order, then
    the peephole cleanups — the same sequence as
    :meth:`repro.compiler.pipeline.CompilationPipeline.ir_passes`.
    """
    statistics: Dict[str, int] = {}
    if config.enable_cse:
        statistics["cse_replacements"] = (
            eliminate_common_subexpressions(program))
    if config.dead_code_elimination:
        statistics["dead_instructions"] = eliminate_dead_code(program)
    if config.strength_reduction:
        statistics["strength_reductions"] = strength_reduce(program)
    if config.enable_peephole:
        statistics["peephole_rewrites"] = peephole_optimize(program)
    return statistics


def run_spm_allocation(program: Program, config: CompilerConfig,
                       platform: Platform) -> Dict[str, int]:
    """Run the platform-dependent scratchpad allocation pass (always last)."""
    statistics: Dict[str, int] = {}
    if config.spm_allocation:
        allocation = allocate_scratchpad(program, platform)
        statistics["spm_functions"] = len(allocation.placed_functions)
    return statistics


def run_ir_passes(program: Program, config: CompilerConfig,
                  platform: Platform) -> Dict[str, int]:
    """Run the IR-level passes selected by ``config`` on ``program`` in place."""
    statistics = run_ir_optimisations(program, config)
    statistics.update(run_spm_allocation(program, config, platform))
    return statistics


def build_program(module: ast.SourceModule, config: CompilerConfig,
                  platform: Platform) -> Tuple[Program, Dict[str, int]]:
    """Apply the configuration's passes and lower to IR.

    The input module is never modified; every build starts from a fresh clone.
    """
    program, statistics = lower_with_ast_passes(module, config)
    statistics.update(run_ir_passes(program, config, platform))
    return program, statistics


def evaluate_config(module: ast.SourceModule, config: CompilerConfig,
                    platform: Platform, entry_function: str,
                    core: Optional[Core] = None,
                    opp: Optional[OperatingPoint] = None,
                    security_evaluator: Optional[SecurityEvaluator] = None,
                    name: Optional[str] = None) -> Variant:
    """Compile ``module`` under ``config`` and statically analyse the result."""
    program, statistics = build_program(module, config, platform)
    if entry_function not in program.functions:
        raise CompilationError(f"entry function {entry_function!r} not found")

    wcet = WCETAnalyzer(platform, core=core, opp=opp).analyze(program, entry_function)
    wcec = EnergyAnalyzer(platform, core=core, opp=opp).analyze(program, entry_function)
    security = (security_evaluator(program, entry_function)
                if security_evaluator is not None else None)
    code_size = program.total_instructions * INSTRUCTION_BYTES

    return Variant(
        name=name or config.short_name(),
        config=config,
        program=program,
        entry_function=entry_function,
        wcet_cycles=wcet.cycles,
        wcet_time_s=wcet.time_s,
        energy_j=wcec.energy_j,
        code_size_bytes=code_size,
        security_level=security,
        pass_statistics=statistics,
    )
