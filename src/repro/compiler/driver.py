"""The multi-criteria compiler driver (the WCC facade).

Ties together the frontend, the optimisation passes, the static analysers and
the multi-objective search:

* :meth:`MultiCriteriaCompiler.compile` — one configuration, one variant,
* :meth:`MultiCriteriaCompiler.explore` — search the configuration space and
  return the Pareto front of variants,
* :meth:`MultiCriteriaCompiler.task_properties` — the per-task ETS properties
  file handed to the coordination layer and the contract system (the "ETS"
  arrow in Figure 1 of the paper).

All variant evaluation flows through one
:class:`~repro.compiler.engine.EvaluationEngine` per (module, entry,
security-context): repeated ``compile`` calls, search runs and the
exhaustive grid share the engine's variant/lowering/analysis caches, so
revisited configurations and sub-structure are never re-analysed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler.config import CompilerConfig
from repro.compiler.engine import (
    AnalysisCache,
    BatchEvaluator,
    EvaluationEngine,
    LoweringCache,
    process_analysis_cache,
)
from repro.compiler.engine.vectorized import pareto_front
from repro.compiler.evaluate import SecurityEvaluator, Variant
from repro.compiler.fpa import FlowerPollinationOptimizer
from repro.compiler.nsga2 import Nsga2Optimizer
from repro.compiler.pipeline import CompilationPipeline
from repro.errors import CompilationError
from repro.frontend import ast_nodes as ast
from repro.hw.core import Core
from repro.hw.dvfs import OperatingPoint
from repro.hw.platform import Platform
from repro.security.analyzer import SecurityAnalyzer


@dataclass
class ParetoFront:
    """The set of non-dominated compiled variants found by a search."""

    variants: List[Variant] = field(default_factory=list)
    evaluations: int = 0
    optimizer: str = ""

    def __len__(self) -> int:
        return len(self.variants)

    def __iter__(self):
        return iter(self.variants)

    def best_by_time(self) -> Variant:
        return min(self.variants, key=lambda v: v.wcet_time_s)

    def best_by_energy(self) -> Variant:
        return min(self.variants, key=lambda v: v.energy_j)

    def best_by_security(self) -> Variant:
        with_security = [v for v in self.variants if v.security_level is not None]
        if not with_security:
            raise CompilationError("no variant carries a security level")
        return max(with_security, key=lambda v: v.security_level)

    def to_rows(self) -> List[Dict[str, object]]:
        return [variant.summary() for variant in self.variants]


class MultiCriteriaCompiler:
    """WCC-like compiler facade for a predictable platform."""

    def __init__(self, platform: Platform, core: Optional[Core] = None,
                 opp: Optional[OperatingPoint] = None,
                 security_samples: int = 8):
        self.platform = platform
        self.core = core or next(iter(platform.predictable_cores), None)
        if self.core is None:
            raise CompilationError(
                f"platform {platform.name!r} has no predictable core; the "
                f"multi-criteria compiler targets predictable architectures")
        self.opp = opp or self.core.nominal_opp
        self.security_samples = security_samples
        #: One compilation pipeline per driver: every engine the driver
        #: creates compiles through this registered pass list, so per-pass
        #: wall-time/invocation counters aggregate across engines and are
        #: reported by :meth:`pipeline_stats`.
        self.pipeline = CompilationPipeline(platform)
        # Shared caches: the analysis cache is platform-wide, lowering
        # caches are per source module, the engines (and their variant
        # caches) per (module, entry, security context).  Parsing is cached
        # process-wide (through the pipeline's timed parse pass), and the
        # analysis cache joins the opt-in process-wide cache when one is
        # enabled.
        shared_analysis = process_analysis_cache(platform)
        self._analysis = (shared_analysis if shared_analysis is not None
                          else AnalysisCache(platform))
        self._lowerings: Dict[int, LoweringCache] = {}
        self._engines: Dict[Tuple[int, str, bool], EvaluationEngine] = {}

    # -- helpers -----------------------------------------------------------------
    def _as_module(self, source: Union[str, ast.SourceModule]
                   ) -> ast.SourceModule:
        if isinstance(source, ast.SourceModule):
            return source
        return self.pipeline.parse(source)

    def pipeline_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-pass wall-time/invocation counters of this driver's builds."""
        return self.pipeline.stats()

    def _security_evaluator(self, module: ast.SourceModule,
                            entry_function: str) -> Optional[SecurityEvaluator]:
        """A security scorer for ``entry_function`` if it has secret params."""
        try:
            function = module.function(entry_function)
        except KeyError:
            return None
        secrets = function.pragmas.get("secret")
        if not secrets:
            return None
        analyzer = SecurityAnalyzer(self.platform, core=self.core, opp=self.opp,
                                    samples_per_class=self.security_samples)

        def evaluate(program, name: str) -> float:
            rng = random.Random(99)
            classes = [rng.getrandbits(8) | 1 for _ in range(2)]
            report = analyzer.analyze_task(program, name, secret_classes=classes)
            return report.security_level

        return evaluate

    def _engine(self, module: ast.SourceModule, entry_function: str,
                evaluate_security: bool) -> EvaluationEngine:
        """The shared evaluation engine for (module, entry, security context)."""
        security_evaluator = (self._security_evaluator(module, entry_function)
                              if evaluate_security else None)
        key = (id(module), entry_function, security_evaluator is not None)
        engine = self._engines.get(key)
        if engine is None:
            lowering = self._lowerings.setdefault(
                id(module), self.pipeline.lowering_cache())
            engine = EvaluationEngine(
                module, self.platform, [entry_function],
                core=self.core, opp=self.opp,
                security_evaluator=security_evaluator,
                analysis_cache=self._analysis,
                lowering_cache=lowering,
                pipeline=self.pipeline,
            )
            self._engines[key] = engine
        return engine

    # -- single-configuration compilation ---------------------------------------------
    def compile(self, source: Union[str, ast.SourceModule], entry_function: str,
                config: Optional[CompilerConfig] = None,
                evaluate_security: bool = False) -> Variant:
        """Compile under ``config`` (default: baseline) and analyse the result.

        The returned variant is served from the compiler's shared engine
        cache: repeated calls with an equal configuration return the *same*
        object.  Treat it (including ``program`` and ``pass_statistics``) as
        read-only; use :func:`repro.compiler.evaluate.evaluate_config` for a
        private, freshly built variant.
        """
        module = self._as_module(source)
        config = config or CompilerConfig.baseline()
        engine = self._engine(module, entry_function, evaluate_security)
        return engine.evaluate(config)

    # -- multi-objective exploration ------------------------------------------------------
    def explore(self, source: Union[str, ast.SourceModule], entry_function: str,
                optimizer: str = "fpa",
                evaluate_security: bool = False,
                population_size: int = 10,
                generations: int = 6,
                seed: int = 7,
                seed_configs: Optional[Sequence[CompilerConfig]] = None,
                parallel: bool = False,
                extended_space: bool = False
                ) -> ParetoFront:
        """Search the configuration space; returns the Pareto front.

        ``extended_space`` lets FPA/NSGA-II explore the CSE/peephole axes
        too (9 genes instead of 7); off by default so fixed-seed searches
        remain bit-for-bit reproducible.
        """
        module = self._as_module(source)
        engine = self._engine(module, entry_function, evaluate_security)
        evaluator = BatchEvaluator(engine, parallel=parallel)

        seeds = list(seed_configs or [CompilerConfig.baseline(),
                                      CompilerConfig.performance()])
        if optimizer == "fpa":
            search = FlowerPollinationOptimizer(
                evaluator, population_size=population_size,
                generations=generations, seed=seed,
                extended_space=extended_space)
        elif optimizer == "nsga2":
            search = Nsga2Optimizer(
                evaluator, population_size=population_size,
                generations=generations, seed=seed,
                extended_space=extended_space)
        elif optimizer == "exhaustive":
            return self._exhaustive(evaluator, extended_space)
        else:
            raise CompilationError(f"unknown optimizer {optimizer!r}")

        variants = search.optimize(initial_configs=seeds)
        return ParetoFront(variants=variants, evaluations=search.evaluations,
                           optimizer=optimizer)

    def _exhaustive(self, evaluator,
                    extended_space: bool = False) -> ParetoFront:
        """Evaluate a representative grid of configurations exhaustively.

        With ``extended_space`` the grid additionally crosses the
        CSE/peephole axes (4x the evaluations; the staged caches absorb
        most of the repeat work).
        """
        variants = []
        evaluations = 0
        new_axes = ((False, True) if extended_space else (False,))
        for unroll in (0, 8, 16):
            for spm in (False, True):
                for strength in (False, True):
                    for inline in (False, True):
                        for cse in new_axes:
                            for peephole in new_axes:
                                config = CompilerConfig(
                                    constant_folding=True,
                                    unroll_limit=unroll,
                                    inline_simple_functions=inline,
                                    dead_code_elimination=True,
                                    strength_reduction=strength,
                                    spm_allocation=spm,
                                    enable_cse=cse,
                                    enable_peephole=peephole)
                                variants.append(evaluator(config))
                                evaluations += 1
        return ParetoFront(variants=pareto_front(variants),
                           evaluations=evaluations, optimizer="exhaustive")

    # -- ETS properties export ----------------------------------------------------------------
    def task_properties(self, variant: Variant,
                        opp: Optional[OperatingPoint] = None
                        ) -> Dict[str, Dict[str, float]]:
        """Per-task ETS properties of a compiled variant.

        Returns a mapping ``task name -> {wcet_s, wcet_cycles, energy_j,
        security}`` for every function annotated with a ``task`` pragma —
        the contents of the ETS file consumed by the coordination layer and
        the contract system.
        """
        opp = opp or self.opp
        properties: Dict[str, Dict[str, float]] = {}
        for task, function in variant.program.task_functions.items():
            wcet = self._analysis.wcet(variant.program, function.name,
                                       core=self.core, opp=opp)
            wcec = self._analysis.wcec(variant.program, function.name,
                                       core=self.core, opp=opp)
            properties[task] = {
                "function": function.name,
                "wcet_cycles": wcet.cycles,
                "wcet_s": wcet.time_s,
                "energy_j": wcec.energy_j,
                "security": variant.security_level,
                "frequency_hz": opp.frequency_hz,
            }
        return properties

    def export_ets(self, variant: Variant, path: str) -> None:
        """Write the ETS properties file as JSON (the Figure 1 artefact)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({
                "platform": self.platform.name,
                "config": variant.config.describe(),
                "entry": variant.entry_function,
                "tasks": self.task_properties(variant),
            }, handle, indent=2)
