"""NSGA-II baseline for the compiler's multi-objective search.

Included as the comparison point for the Flower Pollination Algorithm: both
optimisers expose the same interface (an ``optimize`` method returning the
final Pareto archive of :class:`Variant` objects), so ablation benchmarks can
swap one for the other.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler.config import CompilerConfig
from repro.compiler.evaluate import Variant
from repro.compiler.fpa import pareto_front

Evaluator = Callable[[CompilerConfig], Variant]


def non_dominated_sort(variants: Sequence[Variant]) -> List[List[int]]:
    """Indices of ``variants`` grouped into successive non-dominated fronts."""
    count = len(variants)
    dominated_by: List[List[int]] = [[] for _ in range(count)]
    domination_count = [0] * count
    fronts: List[List[int]] = [[]]

    for i in range(count):
        for j in range(count):
            if i == j:
                continue
            if variants[i].dominates(variants[j]):
                dominated_by[i].append(j)
            elif variants[j].dominates(variants[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [front for front in fronts if front]


def crowding_distance(variants: Sequence[Variant],
                      front: Sequence[int]) -> Dict[int, float]:
    """Crowding distance of each index in ``front``."""
    distance = {i: 0.0 for i in front}
    if not front:
        return distance
    objective_count = len(variants[front[0]].objectives())
    for objective in range(objective_count):
        ordered = sorted(front, key=lambda i: variants[i].objectives()[objective])
        low = variants[ordered[0]].objectives()[objective]
        high = variants[ordered[-1]].objectives()[objective]
        distance[ordered[0]] = distance[ordered[-1]] = float("inf")
        if high == low:
            continue
        for position in range(1, len(ordered) - 1):
            previous = variants[ordered[position - 1]].objectives()[objective]
            following = variants[ordered[position + 1]].objectives()[objective]
            distance[ordered[position]] += (following - previous) / (high - low)
    return distance


@dataclass
class Nsga2Optimizer:
    """NSGA-II over the compiler configuration space."""

    evaluator: Evaluator
    population_size: int = 12
    generations: int = 8
    mutation_probability: float = 0.2
    seed: int = 11
    _cache: Dict[CompilerConfig, Variant] = field(default_factory=dict, repr=False)
    evaluations: int = field(default=0, repr=False)

    def _evaluate(self, genes: Sequence[float]) -> Tuple[CompilerConfig, Variant]:
        config = CompilerConfig.from_genes(genes)
        if config not in self._cache:
            self._cache[config] = self.evaluator(config)
            self.evaluations += 1
        return config, self._cache[config]

    def _select(self, rng: random.Random, population: List[List[float]],
                ranks: Dict[int, int], crowding: Dict[int, float]) -> List[float]:
        a, b = rng.randrange(len(population)), rng.randrange(len(population))
        if ranks[a] != ranks[b]:
            return population[a] if ranks[a] < ranks[b] else population[b]
        return population[a] if crowding.get(a, 0) >= crowding.get(b, 0) else population[b]

    def optimize(self, initial_configs: Optional[Sequence[CompilerConfig]] = None
                 ) -> List[Variant]:
        rng = random.Random(self.seed)
        dims = CompilerConfig.gene_length()

        population: List[List[float]] = [config.to_genes()
                                         for config in (initial_configs or [])]
        while len(population) < self.population_size:
            population.append([rng.random() for _ in range(dims)])
        population = population[:self.population_size]

        archive: List[Variant] = []
        for _generation in range(self.generations):
            variants = [self._evaluate(genes)[1] for genes in population]
            archive = pareto_front(archive + variants)

            fronts = non_dominated_sort(variants)
            ranks: Dict[int, int] = {}
            crowding: Dict[int, float] = {}
            for rank, front in enumerate(fronts):
                for index in front:
                    ranks[index] = rank
                crowding.update(crowding_distance(variants, front))

            offspring: List[List[float]] = []
            while len(offspring) < self.population_size:
                parent_a = self._select(rng, population, ranks, crowding)
                parent_b = self._select(rng, population, ranks, crowding)
                # Uniform crossover.
                child = [parent_a[d] if rng.random() < 0.5 else parent_b[d]
                         for d in range(dims)]
                # Gene-wise mutation.
                for d in range(dims):
                    if rng.random() < self.mutation_probability:
                        child[d] = rng.random()
                offspring.append(child)
            population = offspring

        final_variants = [self._evaluate(genes)[1] for genes in population]
        return pareto_front(archive + final_variants)
