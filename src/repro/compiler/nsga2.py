"""NSGA-II baseline for the compiler's multi-objective search.

Included as the comparison point for the Flower Pollination Algorithm: both
optimisers expose the same interface (an ``optimize`` method returning the
final Pareto archive of :class:`Variant` objects), so ablation benchmarks can
swap one for the other.

The non-dominated sorting and crowding-distance machinery re-exported here is
the numpy-vectorised implementation from
:mod:`repro.compiler.engine.vectorized` (one broadcasted objective-matrix
comparison instead of the seed's O(N²) Python double loop); population
evaluation is batched through the engine's
:class:`~repro.compiler.engine.batch.BatchEvaluator` when one is supplied.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler.config import CompilerConfig
from repro.compiler.engine.batch import BatchEvaluator
from repro.compiler.engine.vectorized import (
    crowding_distance,
    non_dominated_sort,
    pareto_front,
)
from repro.compiler.evaluate import Variant

__all__ = ["Evaluator", "Nsga2Optimizer", "crowding_distance",
           "non_dominated_sort"]

Evaluator = Callable[[CompilerConfig], Variant]


@dataclass
class Nsga2Optimizer:
    """NSGA-II over the compiler configuration space."""

    evaluator: Union[Evaluator, BatchEvaluator]
    population_size: int = 12
    generations: int = 8
    mutation_probability: float = 0.2
    seed: int = 11
    #: Search the extended gene space (adds the CSE/peephole axes); off by
    #: default so fixed-seed base-space runs stay bit-for-bit reproducible.
    extended_space: bool = False
    #: Per-run cache; ``evaluations`` counts unique configurations seen this
    #: run even when a shared engine cache made them lookups.
    _cache: Dict[CompilerConfig, Variant] = field(default_factory=dict, repr=False)
    evaluations: int = field(default=0, repr=False)

    def _evaluate(self, genes: Sequence[float]) -> Tuple[CompilerConfig, Variant]:
        config = CompilerConfig.from_genes(genes)
        if config not in self._cache:
            self._cache[config] = self.evaluator(config)
            self.evaluations += 1
        return config, self._cache[config]

    def _evaluate_population(self, population: Sequence[Sequence[float]]
                             ) -> List[Variant]:
        """Evaluate a whole generation at once (batched when possible)."""
        configs = [CompilerConfig.from_genes(genes) for genes in population]
        if isinstance(self.evaluator, BatchEvaluator):
            fresh = [c for c in dict.fromkeys(configs) if c not in self._cache]
            for config, variant in zip(fresh, self.evaluator.evaluate(fresh)):
                self._cache[config] = variant
                self.evaluations += 1
        return [self._evaluate(genes)[1] for genes in population]

    def _select(self, rng: random.Random, population: List[List[float]],
                ranks: Dict[int, int], crowding: Dict[int, float]) -> List[float]:
        a, b = rng.randrange(len(population)), rng.randrange(len(population))
        if ranks[a] != ranks[b]:
            return population[a] if ranks[a] < ranks[b] else population[b]
        return population[a] if crowding.get(a, 0) >= crowding.get(b, 0) else population[b]

    def optimize(self, initial_configs: Optional[Sequence[CompilerConfig]] = None
                 ) -> List[Variant]:
        rng = random.Random(self.seed)
        dims = CompilerConfig.gene_length(self.extended_space)

        population: List[List[float]] = [
            config.to_genes(self.extended_space)
            for config in (initial_configs or [])]
        while len(population) < self.population_size:
            population.append([rng.random() for _ in range(dims)])
        population = population[:self.population_size]

        archive: List[Variant] = []
        for _generation in range(self.generations):
            variants = self._evaluate_population(population)
            archive = pareto_front(archive + variants)

            fronts = non_dominated_sort(variants)
            ranks: Dict[int, int] = {}
            crowding: Dict[int, float] = {}
            for rank, front in enumerate(fronts):
                for index in front:
                    ranks[index] = rank
                crowding.update(crowding_distance(variants, front))

            offspring: List[List[float]] = []
            while len(offspring) < self.population_size:
                parent_a = self._select(rng, population, ranks, crowding)
                parent_b = self._select(rng, population, ranks, crowding)
                # Uniform crossover.
                child = [parent_a[d] if rng.random() < 0.5 else parent_b[d]
                         for d in range(dims)]
                # Gene-wise mutation.
                for d in range(dims):
                    if rng.random() < self.mutation_probability:
                        child[d] = rng.random()
                offspring.append(child)
            population = offspring

        final_variants = self._evaluate_population(population)
        return pareto_front(archive + final_variants)
