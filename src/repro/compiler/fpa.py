"""Multi-objective Flower Pollination Algorithm (FPA).

WCC's multi-objective compiler optimisation is based on the Flower
Pollination Algorithm (Jadhav & Falk, SCOPES'19).  Candidate configurations
are encoded as vectors in ``[0, 1]^N``; *global pollination* moves a solution
towards a Pareto-archive member along a Lévy flight, *local pollination*
mixes two random population members.  Non-dominated solutions are collected
in an archive which is the algorithm's result.

Pareto-front filtering is the numpy-vectorised implementation from
:mod:`repro.compiler.engine.vectorized` (re-exported here for backwards
compatibility); candidate evaluation goes through the evaluation engine's
:class:`~repro.compiler.engine.batch.BatchEvaluator` when one is supplied,
which adds cross-generation variant caching and staged lowering/analysis
memoisation on top of this optimiser's own per-run cache.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.compiler.config import CompilerConfig
from repro.compiler.engine.batch import BatchEvaluator
from repro.compiler.engine.vectorized import pareto_front
from repro.compiler.evaluate import Variant

__all__ = ["Evaluator", "FlowerPollinationOptimizer", "pareto_front"]

#: Maps a configuration to its evaluated variant.
Evaluator = Callable[[CompilerConfig], Variant]


def _levy_step(rng: random.Random, beta: float = 1.5) -> float:
    """One-dimensional Lévy-distributed step (Mantegna's algorithm)."""
    sigma_u = (math.gamma(1 + beta) * math.sin(math.pi * beta / 2)
               / (math.gamma((1 + beta) / 2) * beta * 2 ** ((beta - 1) / 2))
               ) ** (1 / beta)
    u = rng.gauss(0.0, sigma_u)
    v = abs(rng.gauss(0.0, 1.0)) or 1e-12
    return u / (v ** (1 / beta))


@dataclass
class FlowerPollinationOptimizer:
    """Multi-objective FPA over the compiler configuration space."""

    evaluator: Union[Evaluator, BatchEvaluator]
    population_size: int = 10
    generations: int = 8
    switch_probability: float = 0.8
    seed: int = 7
    #: Search the extended gene space (adds the CSE/peephole axes).  Off by
    #: default so fixed-seed base-space searches draw the exact random
    #: streams they always did and stay bit-for-bit reproducible.
    extended_space: bool = False
    #: Evaluation cache keyed by the decoded configuration, so re-visited
    #: configurations (frequent with only a handful of genes) are free.
    #: ``evaluations`` counts the unique configurations seen this run, even
    #: when a shared engine cache made their evaluation a lookup.
    _cache: Dict[CompilerConfig, Variant] = field(default_factory=dict, repr=False)
    evaluations: int = field(default=0, repr=False)

    def _evaluate(self, genes: Sequence[float]) -> Variant:
        config = CompilerConfig.from_genes(genes)
        if config not in self._cache:
            self._cache[config] = self.evaluator(config)
            self.evaluations += 1
        return self._cache[config]

    def _evaluate_population(self, population: Sequence[Sequence[float]]
                             ) -> List[Variant]:
        """Evaluate a whole population at once (batched when possible)."""
        configs = [CompilerConfig.from_genes(genes) for genes in population]
        if isinstance(self.evaluator, BatchEvaluator):
            fresh = [c for c in dict.fromkeys(configs) if c not in self._cache]
            for config, variant in zip(fresh, self.evaluator.evaluate(fresh)):
                self._cache[config] = variant
                self.evaluations += 1
        return [self._evaluate(genes) for genes in population]

    def optimize(self, initial_configs: Optional[Sequence[CompilerConfig]] = None
                 ) -> List[Variant]:
        """Run the search and return the final Pareto archive."""
        rng = random.Random(self.seed)
        dims = CompilerConfig.gene_length(self.extended_space)

        population: List[List[float]] = []
        for config in (initial_configs or []):
            population.append(config.to_genes(self.extended_space))
        while len(population) < self.population_size:
            population.append([rng.random() for _ in range(dims)])
        population = population[:self.population_size]

        variants = self._evaluate_population(population)
        archive = pareto_front(variants)

        for _generation in range(self.generations):
            for index, genes in enumerate(population):
                if rng.random() < self.switch_probability and archive:
                    # Global pollination towards a random archive member.
                    guide = rng.choice(archive).config.to_genes(
                        self.extended_space)
                    candidate = [
                        genes[d] + _levy_step(rng) * (guide[d] - genes[d])
                        for d in range(dims)
                    ]
                else:
                    # Local pollination between two population members.
                    a, b = rng.choice(population), rng.choice(population)
                    epsilon = rng.random()
                    candidate = [genes[d] + epsilon * (a[d] - b[d])
                                 for d in range(dims)]
                candidate = [min(max(value, 0.0), 1.0) for value in candidate]

                new_variant = self._evaluate(candidate)
                current_variant = self._evaluate(genes)
                if new_variant.dominates(current_variant) or rng.random() < 0.1:
                    population[index] = candidate
                archive = pareto_front(archive + [new_variant])
        return archive
