"""Space-communication use case (Section IV-B).

An image-processing and transmission application runs on the LEON3FT-based
GR712RC board under RTEMS and ships images over SpaceWire.  Deadlines must be
met so no image is lost, and every joule matters on a spacecraft.

The paper reports a 52% energy improvement while meeting all deadlines when
the TeamPlay methodology is applied.  ``run_comparison`` regenerates that
experiment through the declarative scenario layer: the baseline is a
traditional deployment (sequential on one core at the nominal clock, cores
never power down); TeamPlay uses the multi-criteria compiler, energy-aware
dual-core scheduling with DVFS, and the LEON3's idle power-down mode during
slack.  The post-processing hook replays the TeamPlay schedule on the
RTEMS-style periodic executive to validate the deadlines dynamically.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional

from repro.compiler.config import CompilerConfig
from repro.csl.ast_nodes import ContractSpec
from repro.hw.platform import Platform
from repro.hw.presets import gr712rc
from repro.net.spacewire import SpaceWireLink
from repro.rtos.executive import ExecutionLog, PeriodicExecutive
from repro.scenarios import (
    BuildOptions,
    ScenarioResult,
    ScenarioSpec,
    register_scenario,
    run_scenario,
)
from repro.toolchain.predictable import PredictableBuildResult, PredictableToolchain
from repro.toolchain.report import ImprovementReport

#: Image tile processed per period (48 x 48 pixels, already binned on-board).
IMAGE_PIXELS = 2304
#: Processing period: one tile every 200 ms.
PERIOD_MS = 200
#: Fraction of idle static power drawn when the TeamPlay build uses the
#: LEON3 power-down mode during slack.
POWER_DOWN_FACTOR = 0.35

SPACE_SOURCE = """
int raw_image[2304];
int corrected[2304];
int binned[576];
int payload[640];
int payload_len[1];

#pragma teamplay task(acquire) poi(acquire)
int acquire_image(int seed) {
    int value = seed;
    for (int i = 0; i < 2304; i = i + 1) {
        value = (value * 1103 + 443) & 4095;
        raw_image[i] = value;
    }
    return value;
}

#pragma teamplay task(correct) poi(correct)
int radiometric_correction(int gain) {
    int saturated = 0;
    for (int i = 0; i < 2304; i = i + 1) {
        int corrected_value = (raw_image[i] * gain) >> 6;
        corrected_value = corrected_value - 32;
        if (corrected_value < 0) {
            corrected_value = 0;
        }
        if (corrected_value > 4095) {
            corrected_value = 4095;
            saturated = saturated + 1;
        }
        corrected[i] = corrected_value;
    }
    return saturated;
}

#pragma teamplay task(bin) poi(bin)
int spatial_binning(int unused) {
    for (int row = 0; row < 24; row = row + 1) {
        for (int col = 0; col < 24; col = col + 1) {
            int top = (row * 2) * 48 + col * 2;
            int bottom = top + 48;
            int sum = corrected[top] + corrected[top + 1]
                    + corrected[bottom] + corrected[bottom + 1];
            binned[row * 24 + col] = sum / 4;
        }
    }
    return binned[0];
}

#pragma teamplay task(compress) poi(compress)
int compress_image(int threshold) {
    int out = 0;
    int previous = 0;
    int run = 0;
    for (int i = 0; i < 576; i = i + 1) {
        int delta = binned[i] - previous;
        previous = binned[i];
        if (delta < 0) {
            delta = 0 - delta;
        }
        if (delta < threshold) {
            run = run + 1;
        } else {
            payload[out] = run;
            payload[out + 1] = binned[i];
            out = out + 2;
            run = 0;
        }
    }
    payload[out] = run;
    payload_len[0] = out + 1;
    return out + 1;
}

#pragma teamplay task(packetize) poi(packetize)
int packetize_payload(int apid) {
    int crc = apid;
    for (int i = 0; i < 640; i = i + 1) {
        int word = 0;
        if (i < payload_len[0]) {
            word = payload[i];
        }
        crc = crc ^ word;
        for (int bit = 0; bit < 4; bit = bit + 1) {
            if (crc & 1) {
                crc = (crc >> 1) ^ 33800;
            } else {
                crc = crc >> 1;
            }
        }
    }
    return crc;
}
"""

SPACE_CSL = """
system spacewire_imaging {
    period 200 ms;
    deadline 200 ms;
    budget energy 160 mJ;

    task acquire   { implements acquire_image;          budget time 30 ms; budget energy 12 mJ; }
    task correct   { implements radiometric_correction; budget time 40 ms; budget energy 16 mJ; }
    task bin       { implements spatial_binning;        budget time 20 ms; budget energy 8 mJ; }
    task compress  { implements compress_image;         budget time 25 ms; budget energy 10 mJ; }
    task packetize { implements packetize_payload;      budget time 45 ms; budget energy 18 mJ; }

    graph {
        acquire -> correct -> bin -> compress -> packetize;
    }
}
"""

#: Traditional deployment: standard optimisations only.
BASELINE_CONFIG = CompilerConfig(
    constant_folding=True, unroll_limit=0, inline_simple_functions=True,
    dead_code_elimination=True, strength_reduction=False, spm_allocation=False)


def platform() -> Platform:
    """The GR712RC development board (dual LEON3FT)."""
    return gr712rc()


#: Lazily-created shared toolchain: repeated ``build`` calls reuse its
#: evaluation-engine caches (parsed module, lowered IR, analysis tables).
_DEFAULT_TOOLCHAIN: Optional[PredictableToolchain] = None


def default_toolchain() -> PredictableToolchain:
    """The module's shared toolchain (warm caches across builds)."""
    global _DEFAULT_TOOLCHAIN
    if _DEFAULT_TOOLCHAIN is None:
        _DEFAULT_TOOLCHAIN = PredictableToolchain(platform())
    return _DEFAULT_TOOLCHAIN


def spacewire_link() -> SpaceWireLink:
    """The downlink carrying every compressed image."""
    return SpaceWireLink(link_rate_mbps=100.0, max_packet_bytes=1024,
                         active_power_w=0.12, idle_power_w=0.03)


@dataclass
class SpaceComparison:
    """Outcome of the space experiment (E2)."""

    baseline: PredictableBuildResult
    teamplay: PredictableBuildResult
    report: ImprovementReport
    baseline_energy_per_period_j: float
    teamplay_energy_per_period_j: float
    spacewire_energy_per_period_j: float
    executive_log: Optional[ExecutionLog] = None

    @property
    def all_deadlines_met(self) -> bool:
        dynamic_ok = (self.executive_log is None
                      or self.executive_log.deadline_misses == 0)
        return self.teamplay.schedulability.feasible and dynamic_ok


def build(toolchain: Optional[PredictableToolchain] = None,
          config: Optional[CompilerConfig] = None,
          scheduler: str = "energy-aware",
          dvfs: bool = True,
          generations: int = 3,
          population_size: int = 6) -> PredictableBuildResult:
    """Build the space application with the predictable workflow."""
    toolchain = toolchain or default_toolchain()
    return toolchain.build(
        SPACE_SOURCE, SPACE_CSL,
        compiler_config=config,
        scheduler=scheduler,
        dvfs=dvfs,
        generations=generations,
        population_size=population_size,
        glue_style="rtems",
    )


def _spacewire_energy_per_period_j(board: Platform,
                                   contract: ContractSpec) -> float:
    """SpaceWire link energy over one period, identical for both builds."""
    image_bytes = 640 * 4
    return spacewire_link().window_energy_j(image_bytes, contract.period_s())


def _finalize(result: ScenarioResult,
              validate_dynamically: bool = True) -> SpaceComparison:
    """Replay the schedule on the periodic executive and shape the E2 result."""
    teamplay = result.teamplay.build
    executive_log = None
    if validate_dynamically:
        executive = PeriodicExecutive(result.platform, teamplay.task_graph,
                                      teamplay.schedule,
                                      period_s=result.contract.period_s())
        executive_log = executive.run(periods=20, jitter=0.25, seed=3)
        result.report.deadlines_met = (teamplay.schedulability.feasible
                                       and executive_log.deadline_misses == 0)
    return SpaceComparison(
        baseline=result.baseline.build,
        teamplay=teamplay,
        report=result.report,
        baseline_energy_per_period_j=result.baseline.core_energy_j,
        teamplay_energy_per_period_j=result.teamplay.core_energy_j,
        spacewire_energy_per_period_j=result.overhead_energy_j,
        executive_log=executive_log,
    )


#: E2 as a declarative scenario: the baseline never powers anything down
#: (full idle energy), the TeamPlay build uses the LEON3 power-down mode
#: during slack (idle energy scaled by :data:`POWER_DOWN_FACTOR`).
SCENARIO = register_scenario(ScenarioSpec(
    name="space-spacewire",
    title="Space / SpaceWire (E2)",
    kind="predictable",
    platform="gr712rc",
    source=SPACE_SOURCE,
    csl=SPACE_CSL,
    baseline=BuildOptions(config=BASELINE_CONFIG, scheduler="sequential",
                          dvfs=False, glue_style="rtems"),
    teamplay=BuildOptions(scheduler="energy-aware", dvfs=True,
                          generations=3, population_size=6,
                          glue_style="rtems"),
    baseline_idle_factor=1.0,
    teamplay_idle_factor=POWER_DOWN_FACTOR,
    shared_overhead_energy_j=_spacewire_energy_per_period_j,
    report_name="space / SpaceWire (E2)",
    postprocess=_finalize,
    description="Image processing and SpaceWire transmission on the "
                "dual-LEON3 GR712RC under RTEMS (paper Section IV-B).",
    tags=("paper", "predictable"),
))


def run_comparison(generations: int = 3, population_size: int = 6,
                   validate_dynamically: bool = True) -> SpaceComparison:
    """Regenerate experiment E2: traditional deployment vs TeamPlay on the GR712RC."""
    spec = SCENARIO
    if not validate_dynamically:
        spec = SCENARIO.with_(postprocess=functools.partial(
            _finalize, validate_dynamically=False))
    result = run_scenario(spec, generations=generations,
                          population_size=population_size)
    return result.detail
