"""Deep-learning deployment use case (Section IV-D).

A CNN detects free parking spots from an overhead camera.  Two deployments
are studied:

* **Cortex-M0**: the network's inner loops (convolution, dense layer) are
  compiled with the multi-criteria compiler, which offers several variants of
  the same kernels with different WCET/energy characteristics (experiment
  E5) — exactly the guidance the paper says the compiler gives the designer,
* **Apalis TK1**: only the coordination layer of the complex-architecture
  workflow is used (with a manually extracted application structure, as in
  the paper); the generated deployment performs similarly to the
  human-optimised mapping (experiment E6).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.config import CompilerConfig
from repro.compiler.driver import MultiCriteriaCompiler
from repro.coordination.schedulers import EnergyAwareScheduler, Schedule
from repro.coordination.taskgraph import Implementation, TaskGraph
from repro.csl.extract import build_task_graph
from repro.csl.parser import parse_csl
from repro.dl.dataset import ParkingDataset
from repro.dl.kernels import conv2d_kernel_source, matmul_kernel_source
from repro.dl.network import ParkingNet
from repro.hw.platform import Platform
from repro.hw.presets import nucleo_stm32f091rc
from repro.profiling.powprofiler import PowProfiler
from repro.scenarios import (
    BuildOptions,
    RunContext,
    ScenarioResult,
    ScenarioSpec,
    register_scenario,
    run_scenario,
)
from repro.toolchain.complexflow import WorkloadTask
from repro.toolchain.report import ImprovementReport


# ---------------------------------------------------------------------------
# E5: compiled kernel variants on the Cortex-M0
# ---------------------------------------------------------------------------
#: Compiler configurations offered to the designer for the CNN kernels.
M0_CONFIGS = {
    "baseline": CompilerConfig.baseline(),
    "unroll4": CompilerConfig.baseline().with_(
        unroll_limit=4, strength_reduction=True),
    "unroll8": CompilerConfig.baseline().with_(
        unroll_limit=8, strength_reduction=True),
    "spm": CompilerConfig.baseline().with_(spm_allocation=True),
    "unroll8+spm": CompilerConfig.baseline().with_(
        unroll_limit=8, strength_reduction=True, spm_allocation=True),
}


@dataclass
class KernelVariantRow:
    """One row of the E5 variant table."""

    kernel: str
    config: str
    opp: str
    wcet_ms: float
    energy_uj: float

    def as_dict(self) -> Dict[str, object]:
        return {"kernel": self.kernel, "config": self.config, "opp": self.opp,
                "wcet_ms": self.wcet_ms, "energy_uJ": self.energy_uj}


def m0_platform() -> Platform:
    return nucleo_stm32f091rc()


def run_m0_variants(image_size: int = 10, matrix_size: int = 8,
                    sweep_operating_points: bool = True
                    ) -> List[KernelVariantRow]:
    """Regenerate experiment E5: the variant table for the CNN kernels."""
    board = m0_platform()
    compiler = MultiCriteriaCompiler(board)
    core = board.predictable_cores[0]
    opps = core.operating_points if sweep_operating_points else [core.nominal_opp]

    kernels = {
        "conv2d": (conv2d_kernel_source(image_size), "conv2d"),
        "matmul": (matmul_kernel_source(matrix_size), "matmul"),
    }

    rows: List[KernelVariantRow] = []
    for kernel_name, (source, entry) in kernels.items():
        for config_name, config in M0_CONFIGS.items():
            for opp in opps:
                scoped = MultiCriteriaCompiler(board, opp=opp)
                variant = scoped.compile(source, entry, config)
                rows.append(KernelVariantRow(
                    kernel=kernel_name,
                    config=config_name,
                    opp=opp.label,
                    wcet_ms=variant.wcet_time_s * 1e3,
                    energy_uj=variant.energy_j * 1e6,
                ))
    return rows


def _summarize_m0(rows: List[KernelVariantRow]) -> Dict[str, object]:
    """JSON-ready row of the E5 variant table: its shape plus, per kernel,
    the fastest and the most frugal variant at the nominal operating point."""
    nominal_label = m0_platform().predictable_cores[0].nominal_opp.label
    nominal = [row for row in rows if row.opp == nominal_label] or rows
    kernels = sorted({row.kernel for row in rows})
    best: Dict[str, object] = {}
    for kernel in kernels:
        candidates = [row for row in nominal if row.kernel == kernel]
        fastest = min(candidates, key=lambda row: row.wcet_ms)
        frugal = min(candidates, key=lambda row: row.energy_uj)
        best[kernel] = {
            "fastest_config": fastest.config,
            "fastest_wcet_ms": fastest.wcet_ms,
            "lowest_energy_config": frugal.config,
            "lowest_energy_uJ": frugal.energy_uj,
        }
    return {
        "rows": len(rows),
        "kernels": kernels,
        "configs": sorted({row.config for row in rows}),
        "nominal_best": best,
    }


def _run_m0_custom(ctx):
    """Module-level ``custom_run`` so the spec (and any ScenarioResult
    holding it) stays picklable for process workers and the job journal."""
    return run_m0_variants()


#: E5 as a declarative (custom-kind) scenario: the kernel-variant table is
#: designer guidance, not a baseline-vs-TeamPlay build, so a ``custom_run``
#: regenerates the table and the registry sweep reports its shape.
M0_SCENARIO = register_scenario(ScenarioSpec(
    name="parking-dl-m0",
    title="CNN kernel variants on Cortex-M0 (E5)",
    kind="custom",
    platform="nucleo-stm32f091rc",
    custom_run=_run_m0_custom,
    summarize=_summarize_m0,
    description="Multi-criteria compilation of the CNN inner kernels on "
                "the Cortex-M0: one WCET/energy variant row per (kernel, "
                "configuration, operating point) — the designer guidance "
                "table of paper Section IV-D.",
    tags=("paper", "custom"),
))


# ---------------------------------------------------------------------------
# E6: TK1 deployment vs the hand-optimised mapping
# ---------------------------------------------------------------------------
PARKING_CSL = """
system parking_detection {
    period 500 ms;
    deadline 500 ms;

    task capture     { budget time 100 ms; }
    task inference   { budget time 400 ms; }
    task postprocess { budget time 60 ms; }
    task report      { budget time 40 ms; }

    graph {
        capture -> inference -> postprocess -> report;
    }
}
"""


def parking_network(spots: int = 8, training_scenes: int = 40,
                    seed: int = 7) -> ParkingNet:
    """The trained parking detector whose workload is deployed on the TK1."""
    dataset = ParkingDataset(spots=spots, seed=seed)
    network = ParkingNet(dataset)
    network.train(dataset.batch(training_scenes))
    return network


def tk1_workload(network: Optional[ParkingNet] = None,
                 work_scale: float = 8000.0) -> List[WorkloadTask]:
    """The TK1 task set, sized from the network's MAC count.

    ``work_scale`` converts one inference's MACs into total work units per
    period (the application processes several camera tiles per activation).
    """
    network = network or parking_network()
    inference_units = network.inference_macs() * work_scale
    return [
        WorkloadTask("capture", work_units=inference_units * 0.08,
                     kernel="preprocess", gpu_capable=False),
        WorkloadTask("inference", work_units=inference_units, kernel="conv",
                     gpu_capable=True),
        WorkloadTask("postprocess", work_units=inference_units * 0.05,
                     kernel="matmul", gpu_capable=False),
        WorkloadTask("report", work_units=inference_units * 0.01, kernel=None,
                     gpu_capable=False),
    ]


@dataclass
class Tk1Comparison:
    """Outcome of the TK1 deployment experiment (E6)."""

    teamplay_schedule: Schedule
    manual_schedule: Schedule
    report: ImprovementReport
    teamplay_energy_j: float
    manual_energy_j: float

    @property
    def energy_ratio(self) -> float:
        """TeamPlay energy relative to the hand-optimised deployment."""
        return self.teamplay_energy_j / self.manual_energy_j

    @property
    def time_ratio(self) -> float:
        return (self.teamplay_schedule.makespan_s
                / self.manual_schedule.makespan_s)


def _manual_task_graph(board: Platform, tasks: List[WorkloadTask],
                       csl_text: str, profiling_runs: int) -> TaskGraph:
    """The human-optimised mapping: GPU at nominal for the CNN, fastest CPU
    at nominal for everything else (no DVFS, no search)."""
    spec = parse_csl(csl_text)
    profiler = PowProfiler(board, noise_std=0.0)
    gpu = next(core for core in board.complex_cores if core.kind.value == "gpu")
    cpu = next(core for core in board.complex_cores if core.kind.value == "cpu")
    implementations: Dict[str, List[Implementation]] = {}
    for task in tasks:
        core = gpu if task.gpu_capable else cpu
        profile = profiler.profile_workload(
            task.name, core.name, task.work_units, kernel=task.kernel,
            runs=profiling_runs, opp=core.nominal_opp)
        implementations[task.name] = [Implementation(
            core=core.name, properties=profile.to_properties(),
            opp_label=core.nominal_opp.label)]
    return build_task_graph(spec, implementations,
                            name=f"{spec.system}-manual")


def _manual_mapping(ctx: RunContext) -> Schedule:
    """The E6 baseline: schedule the hand-optimised mapping (no search)."""
    manual_graph = _manual_task_graph(ctx.platform, ctx.tasks, PARKING_CSL,
                                      ctx.profiling_runs)
    return EnergyAwareScheduler(ctx.platform).schedule(manual_graph)


def _finalize_tk1(result: ScenarioResult) -> Tk1Comparison:
    """Shape the generic scenario result into the paper's E6 comparison."""
    return Tk1Comparison(
        teamplay_schedule=result.teamplay.schedule,
        manual_schedule=result.baseline.schedule,
        report=result.report,
        teamplay_energy_j=result.teamplay.core_energy_j,
        manual_energy_j=result.baseline.core_energy_j,
    )


#: E6 as a declarative scenario.  As in the paper, only the coordination
#: layer is used on this target (the application structure and the
#: energy/time estimates come from profiling), so DVFS is left at the
#: nominal operating points and the comparison is about the mapping
#: decisions: the baseline side is the human-optimised mapping, built by a
#: custom hook instead of the profiling workflow.
TK1_SCENARIO = register_scenario(ScenarioSpec(
    name="parking-dl-tk1",
    title="Deep learning on TK1 (E6)",
    kind="complex",
    platform="apalis-tk1",
    csl=PARKING_CSL,
    workload=tk1_workload,
    baseline=BuildOptions(custom=_manual_mapping),
    teamplay=BuildOptions(scheduler="energy-aware", allow_gpu=True,
                          dvfs=False),
    profiling_runs=8,
    energy_model="total",
    report_name="deep learning on TK1 (E6)",
    postprocess=_finalize_tk1,
    description="CNN parking detection deployed on the Apalis TK1: "
                "coordination-layer mapping vs the hand-optimised one "
                "(paper Section IV-D).",
    tags=("paper", "complex"),
))


def run_tk1_comparison(profiling_runs: int = 8,
                       work_scale: float = 8000.0) -> Tk1Comparison:
    """Regenerate experiment E6: coordination-layer deployment vs manual."""
    spec = TK1_SCENARIO
    if work_scale != 8000.0:
        spec = TK1_SCENARIO.with_(
            workload=functools.partial(tk1_workload, work_scale=work_scale))
    result = run_scenario(spec, profiling_runs=profiling_runs)
    return result.detail
