"""Uncrewed-aerial-vehicle use cases (Section IV-C).

Two missions are modelled on fixed-wing drones carrying a Jetson-class
computing payload:

* **SAR** (search and rescue): a vision pipeline detects lifeboats at sea;
  applying the TeamPlay complex-architecture workflow (dynamic profiling +
  energy-aware GPU/CPU mapping with DVFS) reduced software energy by about
  18%, extending flight time by roughly four minutes,
* **PA** (precision agriculture): only the energy analysis was used, enabling
  in-flight battery-aware schedulability; mechanical power is ≈28 W at cruise
  while the software payload draws between 2 and 11 W.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.coordination.battery_aware import (
    BatteryAwareManager,
    MissionOutcome,
    MissionPhase,
    SoftwareMode,
)
from repro.hw.battery import Battery
from repro.hw.platform import Platform
from repro.hw.presets import apalis_tk1, jetson_nano, jetson_tx2
from repro.scenarios import (
    BuildOptions,
    ScenarioResult,
    ScenarioSpec,
    register_scenario,
    run_scenario,
)
from repro.toolchain.complexflow import ComplexBuildResult, WorkloadTask
from repro.toolchain.report import ImprovementReport

#: Cruise mechanical power of the fixed-wing UAV (W).
CRUISE_MECHANICAL_POWER_W = 28.0
#: Battery carried by the SAR drone.
BATTERY_WH = 90.0
#: Frame period of the detection pipeline (5 frames per second).
FRAME_PERIOD_S = 0.2

#: The SAR vision pipeline, sized in abstract work units (≈ operations).
SAR_TASKS = [
    WorkloadTask("capture", work_units=2.5e7, kernel="preprocess",
                 gpu_capable=False),
    WorkloadTask("preprocess", work_units=1.0e8, kernel="preprocess",
                 gpu_capable=True),
    WorkloadTask("detect", work_units=8.0e8, kernel="detect", gpu_capable=True),
    WorkloadTask("track", work_units=6.0e7, kernel="matmul", gpu_capable=False),
    WorkloadTask("report", work_units=1.5e7, kernel=None, gpu_capable=False),
]

SAR_CSL = """
system sar_uav {
    period 200 ms;
    deadline 200 ms;

    task capture    { budget time 60 ms; }
    task preprocess { budget time 80 ms; }
    task detect     { budget time 170 ms; }
    task track      { budget time 130 ms; }
    task report     { budget time 60 ms; }

    graph {
        capture -> preprocess -> detect -> track -> report;
    }
}
"""

_PLATFORMS = {
    "apalis-tk1": apalis_tk1,
    "jetson-tx2": jetson_tx2,
    "jetson-nano": jetson_nano,
}


def platform(name: str = "apalis-tk1") -> Platform:
    """One of the three boards flown in the project."""
    try:
        return _PLATFORMS[name]()
    except KeyError:
        raise ValueError(
            f"unknown UAV platform {name!r}; expected one of {sorted(_PLATFORMS)}")


# ---------------------------------------------------------------------------
# SAR: energy improvement and flight time
# ---------------------------------------------------------------------------
@dataclass
class SarComparison:
    """Outcome of the SAR experiment (E3)."""

    baseline: ComplexBuildResult
    teamplay: ComplexBuildResult
    report: ImprovementReport
    baseline_software_power_w: float
    teamplay_software_power_w: float
    baseline_flight_time_s: float
    teamplay_flight_time_s: float

    @property
    def flight_time_gain_s(self) -> float:
        return self.teamplay_flight_time_s - self.baseline_flight_time_s


def flight_time_s(software_power_w: float,
                  battery_wh: float = BATTERY_WH,
                  mechanical_power_w: float = CRUISE_MECHANICAL_POWER_W) -> float:
    """Endurance at cruise with a given computing payload draw."""
    battery = Battery(capacity_wh=battery_wh)
    return battery.endurance_s(mechanical_power_w + software_power_w)


def _sar_tasks() -> List[WorkloadTask]:
    return list(SAR_TASKS)


def _finalize_sar(result: ScenarioResult) -> SarComparison:
    """Shape the generic scenario result into the paper's E3 comparison."""
    baseline_power = result.baseline.build.software_power_w
    teamplay_power = result.teamplay.build.software_power_w
    return SarComparison(
        baseline=result.baseline.build,
        teamplay=result.teamplay.build,
        report=result.report,
        baseline_software_power_w=baseline_power,
        teamplay_software_power_w=teamplay_power,
        baseline_flight_time_s=flight_time_s(baseline_power),
        teamplay_flight_time_s=flight_time_s(teamplay_power),
    )


#: E3 as a declarative scenario.  The traditional deployment already uses
#: the GPU for the computer-vision kernels (a CUDA pipeline tuned for
#: throughput, mapped greedily for time at the nominal operating points);
#: the TeamPlay deployment additionally lets the energy-aware coordination
#: layer pick placements and operating points from the dynamic profiles and
#: power-gate unused cores.
SAR_SCENARIO = register_scenario(ScenarioSpec(
    name="uav-sar",
    title="UAV search and rescue (E3)",
    kind="complex",
    platform="apalis-tk1",
    csl=SAR_CSL,
    workload=_sar_tasks,
    baseline=BuildOptions(scheduler="time-greedy", allow_gpu=True,
                          dvfs=False, power_down_unused=False),
    teamplay=BuildOptions(scheduler="energy-aware", allow_gpu=True,
                          dvfs=True, power_down_unused=True),
    profiling_runs=8,
    energy_model="software-power",
    report_name="UAV search and rescue (E3)",
    postprocess=_finalize_sar,
    description="Lifeboat-detection vision pipeline on a Jetson-class UAV "
                "payload: dynamic profiling plus energy-aware GPU/CPU "
                "mapping with DVFS (paper Section IV-C).",
    tags=("paper", "complex"),
))


def run_sar_comparison(platform_name: str = "apalis-tk1",
                       profiling_runs: int = 8) -> SarComparison:
    """Regenerate experiment E3: traditional deployment vs TeamPlay."""
    spec = SAR_SCENARIO
    if platform_name != "apalis-tk1":
        spec = SAR_SCENARIO.with_(
            platform=functools.partial(platform, platform_name))
    result = run_scenario(spec, profiling_runs=profiling_runs)
    return result.detail


# ---------------------------------------------------------------------------
# PA: battery-aware schedulability
# ---------------------------------------------------------------------------
#: Software modes of the precision-agriculture payload (detection quality vs
#: power), spanning the 2–11 W range reported in the paper.
PA_SOFTWARE_MODES = [
    SoftwareMode("full-detection", power_w=11.0, quality=1.0),
    SoftwareMode("reduced-rate", power_w=6.0, quality=0.6),
    SoftwareMode("navigation-only", power_w=2.0, quality=0.2),
]


def pa_mission(survey_minutes: float = 40.0) -> List[MissionPhase]:
    """Take-off / survey / return mission profile for the PA use case."""
    return [
        MissionPhase("climb", duration_s=120.0, mechanical_power_w=45.0),
        MissionPhase("survey", duration_s=survey_minutes * 60.0,
                     mechanical_power_w=CRUISE_MECHANICAL_POWER_W),
        MissionPhase("return", duration_s=240.0, mechanical_power_w=26.0),
    ]


@dataclass
class PaResult:
    """Outcome of the PA experiment (E4)."""

    outcome: MissionOutcome
    static_outcome: MissionOutcome
    software_power_range_w: Dict[str, float]
    mechanical_power_w: float


def run_pa_mission(survey_minutes: float = 40.0,
                   battery_wh: float = 33.0) -> PaResult:
    """Regenerate experiment E4: battery-aware adaptation vs a fixed mode.

    The adaptive manager finishes the mission by degrading the payload when
    the battery would otherwise run out, whereas always flying in
    full-detection mode depletes the battery before the return leg on the
    same mission.
    """
    mission = pa_mission(survey_minutes)

    adaptive = BatteryAwareManager(Battery(capacity_wh=battery_wh),
                                   PA_SOFTWARE_MODES)
    adaptive_outcome = adaptive.simulate_mission(mission)

    static = BatteryAwareManager(Battery(capacity_wh=battery_wh),
                                 [PA_SOFTWARE_MODES[0]])
    static_outcome = static.simulate_mission(mission)

    return PaResult(
        outcome=adaptive_outcome,
        static_outcome=static_outcome,
        software_power_range_w={mode.name: mode.power_w
                                for mode in PA_SOFTWARE_MODES},
        mechanical_power_w=CRUISE_MECHANICAL_POWER_W,
    )


def _summarize_pa(detail: PaResult) -> Dict[str, object]:
    """JSON-ready row of the E4 mission comparison."""
    return {
        "adaptive_completed": detail.outcome.completed,
        "adaptive_flight_time_s": detail.outcome.flight_time_s,
        "adaptive_final_soc": detail.outcome.final_state_of_charge,
        "static_completed": detail.static_outcome.completed,
        "static_flight_time_s": detail.static_outcome.flight_time_s,
        "software_power_range_w": dict(detail.software_power_range_w),
        "mechanical_power_w": detail.mechanical_power_w,
    }


def _run_pa_custom(ctx):
    """Module-level ``custom_run`` so the spec (and any ScenarioResult
    holding it) stays picklable for process workers and the job journal."""
    return run_pa_mission()


#: E4 as a declarative (custom-kind) scenario: not a baseline-vs-TeamPlay
#: build — only the energy analysis feeds the in-flight battery-aware
#: schedulability decision — so a ``custom_run`` replaces the pipeline and
#: the registry sweep reports the mission outcome instead of an improvement
#: report.
PA_SCENARIO = register_scenario(ScenarioSpec(
    name="uav-pa",
    title="UAV precision agriculture (E4)",
    kind="custom",
    platform="jetson-nano",
    custom_run=_run_pa_custom,
    summarize=_summarize_pa,
    description="Battery-aware mission management for a precision-"
                "agriculture UAV: the payload degrades its software mode "
                "in flight so the mission completes on the remaining "
                "battery (paper Section IV-C).",
    tags=("paper", "custom"),
))
