"""Camera-pill use case (Section IV-A).

A capsule-endoscopy device captures frames, filters and compresses them,
encrypts the medical data and radios it to an external receiver.  The
platform is a Cortex-M0 with a small FPGA image co-processor; the whole
pipeline must fit the frame period and a tight energy budget because the pill
runs from a miniature battery.

The paper reports that applying the TeamPlay toolchain (multi-criteria
compilation; the coordination layer could not be used on this target) gave an
18% performance and 19% energy improvement over a traditional toolchain.
``run_comparison`` regenerates that experiment through the declarative
scenario layer: :data:`SCENARIO` describes both builds (the baseline is the
traditional configuration — standard optimisations, code in flash — TeamPlay
is the multi-objective explored configuration) and the shared
:class:`~repro.scenarios.runner.ScenarioRunner` executes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler.config import CompilerConfig
from repro.coordination.taskgraph import EtsProperties, Implementation
from repro.csl.ast_nodes import ContractSpec
from repro.hw.platform import Platform
from repro.hw.presets import camera_pill_board
from repro.net.radio import RadioLink
from repro.scenarios import (
    BuildOptions,
    ScenarioResult,
    ScenarioSpec,
    register_scenario,
    run_scenario,
)
from repro.toolchain.predictable import PredictableBuildResult, PredictableToolchain
from repro.toolchain.report import ImprovementReport

#: Pixels per captured frame (32 x 32 sensor tile processed per activation).
FRAME_PIXELS = 1024
#: Frame period: the pill captures ten frames per second.
FRAME_PERIOD_MS = 100

CAMERA_PILL_SOURCE = """
int frame[1024];
int filtered[1024];
int packet[2112];
int packet_len[1];
int xtea_key[4] = {1886217008, 1936287828, 1684104562, 1852139619};

#pragma teamplay task(capture) poi(capture)
int capture_frame(int seed) {
    int value = seed;
    for (int i = 0; i < 1024; i = i + 1) {
        value = (value * 75 + 74) & 1023;
        frame[i] = value;
    }
    return value;
}

#pragma teamplay task(filter) poi(filter)
int filter_frame(int gain) {
    for (int row = 0; row < 32; row = row + 1) {
        for (int col = 1; col < 31; col = col + 1) {
            int idx = row * 32 + col;
            int smoothed = (frame[idx - 1] + 2 * frame[idx] + frame[idx + 1]) / 4;
            filtered[idx] = (smoothed * gain) >> 4;
        }
        filtered[row * 32] = frame[row * 32];
        filtered[row * 32 + 31] = frame[row * 32 + 31];
    }
    return filtered[0];
}

#pragma teamplay task(compress) poi(compress)
int compress_frame(int threshold) {
    int out = 0;
    int run = 0;
    int previous = 0;
    for (int i = 0; i < 1024; i = i + 1) {
        int delta = filtered[i] - previous;
        previous = filtered[i];
        if (delta < 0) {
            delta = 0 - delta;
        }
        if (delta < threshold) {
            run = run + 1;
        } else {
            packet[out] = run;
            packet[out + 1] = filtered[i];
            out = out + 2;
            run = 0;
        }
    }
    packet[out] = run;
    packet_len[0] = out + 1;
    return out + 1;
}

int xtea_round(int block_index) {
    int v0 = packet[block_index];
    int v1 = packet[block_index + 1];
    int sum = 0;
    int delta = 1640531527;
    for (int round = 0; round < 16; round = round + 1) {
        v0 = v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + xtea_key[sum & 3]));
        sum = sum + delta;
        v1 = v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + xtea_key[(sum >> 11) & 3]));
    }
    packet[block_index] = v0;
    packet[block_index + 1] = v1;
    return v0 ^ v1;
}

#pragma teamplay task(encrypt) poi(encrypt)
int encrypt_packet(int key0) {
    int checksum = 0;
    xtea_key[0] = key0;
    for (int block = 0; block < 1056; block = block + 1) {
        int index = block * 2;
        if (index + 1 < packet_len[0]) {
            checksum = checksum ^ xtea_round(index);
        }
    }
    return checksum;
}

#pragma teamplay task(transmit) poi(transmit)
int frame_packet(int station_id) {
    int crc = station_id;
    for (int i = 0; i < 2112; i = i + 1) {
        int word = 0;
        if (i < packet_len[0]) {
            word = packet[i];
        }
        crc = crc ^ word;
        for (int bit = 0; bit < 4; bit = bit + 1) {
            if (crc & 1) {
                crc = (crc >> 1) ^ 40961;
            } else {
                crc = crc >> 1;
            }
        }
    }
    return crc;
}
"""

CAMERA_PILL_CSL = """
system camera_pill {
    period 100 ms;
    deadline 100 ms;
    budget energy 120 mJ;

    task capture  { implements capture_frame;  budget time 5 ms;  budget energy 0.2 mJ; }
    task filter   { implements filter_frame;   budget time 10 ms; budget energy 0.5 mJ; }
    task compress { implements compress_frame; budget time 10 ms; budget energy 0.5 mJ; }
    task encrypt  { implements encrypt_packet; budget time 55 ms; budget energy 2.0 mJ; }
    task transmit { implements frame_packet;   budget time 30 ms; budget energy 1.5 mJ; }

    graph {
        capture -> filter -> compress -> encrypt -> transmit;
    }
}
"""

#: Traditional toolchain: standard always-on optimisations, code in flash,
#: highest clock, no multi-objective exploration.
BASELINE_CONFIG = CompilerConfig(
    constant_folding=True, unroll_limit=0, inline_simple_functions=True,
    dead_code_elimination=True, strength_reduction=False, spm_allocation=False,
    harden_security=False)


def platform() -> Platform:
    """The camera-pill board (Cortex-M0 + FPGA imaging co-processor)."""
    return camera_pill_board()


#: Lazily-created shared toolchain: repeated ``build`` calls reuse its
#: evaluation-engine caches (parsed module, lowered IR, analysis tables).
_DEFAULT_TOOLCHAIN: Optional[PredictableToolchain] = None


def default_toolchain() -> PredictableToolchain:
    """The module's shared toolchain (warm caches across builds)."""
    global _DEFAULT_TOOLCHAIN
    if _DEFAULT_TOOLCHAIN is None:
        _DEFAULT_TOOLCHAIN = PredictableToolchain(platform())
    return _DEFAULT_TOOLCHAIN


def radio() -> RadioLink:
    """The pill's body-area radio used to transmit every frame."""
    return RadioLink(bitrate_bps=1_000_000, energy_per_bit_j=8.0e-9,
                     wakeup_time_s=150e-6, wakeup_energy_j=2.0e-6,
                     max_payload_bytes=128, header_bytes=4)


def fpga_filter_implementation(board: Platform) -> Implementation:
    """The FPGA-offloaded version of the filter task.

    The co-processor filters a whole frame in hardware; the M0 only pays the
    offload overhead.  This is an *extra implementation* handed to the
    coordination layer (a second version of the ``filter`` task).
    """
    fpga = board.accelerators[0]
    blocks = FRAME_PIXELS / 64.0      # the FPGA processes 64-pixel blocks
    return Implementation(
        core=fpga.name,
        properties=EtsProperties(
            wcet_s=fpga.execution_time("image_filter", blocks),
            energy_j=fpga.execution_energy("image_filter", blocks)),
        opp_label="fpga")


@dataclass
class CameraPillComparison:
    """Outcome of the camera-pill experiment (E1)."""

    baseline: PredictableBuildResult
    teamplay: PredictableBuildResult
    report: ImprovementReport
    radio_energy_per_frame_j: float

    @property
    def certificate_valid(self) -> bool:
        return self.teamplay.certificate.valid


def build(toolchain: Optional[PredictableToolchain] = None,
          config: Optional[CompilerConfig] = None,
          scheduler: str = "sequential",
          dvfs: bool = False,
          generations: int = 3,
          population_size: int = 6,
          use_fpga: bool = False) -> PredictableBuildResult:
    """Build the camera-pill application with the predictable workflow."""
    toolchain = toolchain or default_toolchain()
    board = toolchain.platform
    extra: Dict[str, list] = {}
    if use_fpga:
        extra["filter"] = [fpga_filter_implementation(board)]
    return toolchain.build(
        CAMERA_PILL_SOURCE, CAMERA_PILL_CSL,
        compiler_config=config,
        scheduler=scheduler,
        dvfs=dvfs,
        generations=generations,
        population_size=population_size,
        glue_style="posix",
        extra_implementations=extra,
    )


def _radio_energy_per_frame_j(board: Platform, contract: ContractSpec) -> float:
    """Per-frame radio energy, identical for both deployments.

    Both builds transmit the same (compressed, encrypted) frames; the radio
    contribution is charged to both sides and reported separately.
    """
    return radio().transmit_energy_j(FRAME_PIXELS * 2)


def _finalize(result: ScenarioResult) -> CameraPillComparison:
    """Shape the generic scenario result into the paper's E1 comparison."""
    return CameraPillComparison(
        baseline=result.baseline.build,
        teamplay=result.teamplay.build,
        report=result.report,
        radio_energy_per_frame_j=result.overhead_energy_j,
    )


#: E1 as a declarative scenario.  Both builds schedule the pipeline
#: sequentially on the M0 at its nominal clock (the paper could not use the
#: coordination layer on this target); the difference is the compiler: the
#: baseline uses the traditional configuration, TeamPlay explores the
#: configuration space with all three analysers in the loop.
SCENARIO = register_scenario(ScenarioSpec(
    name="camera-pill",
    title="Camera pill (E1)",
    kind="predictable",
    platform="camera-pill",
    source=CAMERA_PILL_SOURCE,
    csl=CAMERA_PILL_CSL,
    baseline=BuildOptions(config=BASELINE_CONFIG, scheduler="sequential",
                          dvfs=False),
    teamplay=BuildOptions(scheduler="sequential", dvfs=False,
                          generations=3, population_size=6),
    shared_overhead_energy_j=_radio_energy_per_frame_j,
    report_name="camera pill (E1)",
    postprocess=_finalize,
    description="Capsule-endoscopy imaging pipeline on a Cortex-M0: "
                "traditional toolchain vs multi-criteria compilation "
                "(paper Section IV-A).",
    tags=("paper", "predictable"),
))


def run_comparison(generations: int = 3, population_size: int = 6
                   ) -> CameraPillComparison:
    """Regenerate experiment E1: traditional toolchain vs TeamPlay."""
    result = run_scenario(SCENARIO, generations=generations,
                          population_size=population_size)
    return result.detail
