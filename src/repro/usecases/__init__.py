"""The paper's four industrial use cases, rebuilt on the simulated substrates.

* :mod:`repro.usecases.camera_pill` — capsule endoscopy imaging pipeline on a
  Cortex-M0 + FPGA co-processor (Section IV-A),
* :mod:`repro.usecases.space` — image processing and SpaceWire transmission
  on the dual-LEON3 GR712RC running RTEMS (Section IV-B),
* :mod:`repro.usecases.uav` — search-and-rescue and precision-agriculture
  missions on Jetson-class boards (Section IV-C),
* :mod:`repro.usecases.deep_learning` — CNN-based free-parking-spot detection
  on the Cortex-M0 and the TK1 (Section IV-D).

Each module exposes the use case's TeamPlay-C sources / workload description,
its CSL contract, a declarative :class:`~repro.scenarios.spec.ScenarioSpec`
registered with :mod:`repro.scenarios` (plus the paper-specific
post-processing hook that shapes the generic scenario result), and a
``run_*`` comparison returning the baseline-vs-TeamPlay improvement that the
corresponding benchmark regenerates.
"""

from repro.usecases import camera_pill, deep_learning, space, uav

__all__ = ["camera_pill", "deep_learning", "space", "uav"]
