"""Declarative campaign specifications.

A :class:`CampaignSpec` is an ordered sequence of :class:`StageSpec`\\ s.
Each stage names a set of evaluation-service submissions: a static list of
:class:`~repro.service.jobs.JobRequest`\\ s, a registered *parameterize*
hook that derives the submissions from the previous stage's
:class:`~repro.scenarios.spec.ScenarioResult`\\ s, or both (static requests
are submitted alongside the hook's output).  The
:class:`~repro.campaigns.runner.CampaignRunner` interprets the spec; the
spec itself is pure data — JSON-serialisable via :meth:`CampaignSpec.as_dict`
/ :meth:`CampaignSpec.from_dict`, which is what lets campaigns travel over
the HTTP API, live in spec files, and replay from the persistent job
journal.  Hooks are therefore referenced *by registered name*
(see :mod:`repro.campaigns.hooks`), never embedded as callables.

Failure policy, per stage (``on_failure``):

* ``"stop"`` (default) — any failed submission fails the stage and stops
  the campaign; the remaining stages are skipped (the agentpool
  ``Pipeline``/``Stage`` failure-stops-pipeline shape).
* ``"skip"`` — a failed stage is abandoned: its results (even partial
  successes) are discarded and the next stage's hook sees the *previous*
  stage's results unchanged, as if the failed stage were not there.
* ``"continue"`` — failed submissions are tolerated: the stage completes
  with its successful subset, which is what feeds the next stage.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import TeamPlayError
from repro.service.jobs import JobError, JobRequest

#: What a stage does when one of its submissions fails.
ON_FAILURE = ("stop", "skip", "continue")


class CampaignSpecError(TeamPlayError):
    """Raised for malformed campaign specifications."""


@dataclass(frozen=True)
class StageSpec:
    """One stage of a campaign: which submissions, and how to fail.

    ``requests`` are submitted verbatim; ``parameterize`` names a registered
    hook (:func:`~repro.campaigns.hooks.register_parameterizer`) called with
    the previous stage's results plus ``hook_args`` and returning more
    requests.  ``batch=True`` submits the stage's requests as *one* batch
    job (one queue entry, one fingerprint, sub-requests sharing a warm
    runner) instead of one job per request — all-or-nothing, so the
    ``continue`` policy degrades to ``skip`` for batch stages.
    """

    name: str
    requests: Tuple[JobRequest, ...] = ()
    parameterize: Optional[str] = None
    hook_args: Dict[str, object] = field(default_factory=dict)
    on_failure: str = "stop"
    batch: bool = False
    priority: int = 0
    use_cache: bool = True

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise CampaignSpecError("a stage needs a non-empty name")
        if self.on_failure not in ON_FAILURE:
            raise CampaignSpecError(
                f"stage {self.name!r}: unknown on_failure "
                f"{self.on_failure!r}; expected one of {ON_FAILURE}")
        if not self.requests and self.parameterize is None:
            raise CampaignSpecError(
                f"stage {self.name!r} needs static requests, a "
                f"parameterize hook, or both")
        for entry in self.requests:
            if not isinstance(entry, JobRequest):
                raise CampaignSpecError(
                    f"stage {self.name!r}: static requests must be "
                    f"JobRequest objects, got {entry!r}")
        if self.parameterize is not None \
                and not isinstance(self.parameterize, str):
            raise CampaignSpecError(
                f"stage {self.name!r}: parameterize must name a registered "
                f"hook, got {self.parameterize!r} — campaigns are "
                f"serialisable data, so hooks travel by name")
        if isinstance(self.priority, bool) or not isinstance(self.priority,
                                                             int):
            raise CampaignSpecError(
                f"stage {self.name!r}: priority must be an integer, "
                f"got {self.priority!r}")
        if not isinstance(self.use_cache, bool) \
                or not isinstance(self.batch, bool):
            raise CampaignSpecError(
                f"stage {self.name!r}: batch/use_cache must be booleans")
        try:
            json.dumps(self.hook_args)
        except (TypeError, ValueError):
            raise CampaignSpecError(
                f"stage {self.name!r}: hook_args must be JSON-serialisable"
            ) from None

    def as_dict(self) -> Dict[str, object]:
        """The stage's canonical JSON-ready form."""
        return {
            "name": self.name,
            "requests": [request.as_dict() for request in self.requests],
            "parameterize": self.parameterize,
            "hook_args": dict(self.hook_args),
            "on_failure": self.on_failure,
            "batch": self.batch,
            "priority": self.priority,
            "use_cache": self.use_cache,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "StageSpec":
        """Build a stage from a JSON payload, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise CampaignSpecError("a stage must be a JSON object")
        known = {"name", "requests", "parameterize", "hook_args",
                 "on_failure", "batch", "priority", "use_cache"}
        unknown = set(payload) - known
        if unknown:
            raise CampaignSpecError(
                f"unknown stage fields: {', '.join(sorted(unknown))}")
        raw_requests = payload.get("requests", [])
        if not isinstance(raw_requests, (list, tuple)):
            raise CampaignSpecError(
                f"stage {payload.get('name')!r}: requests must be a list")
        try:
            requests = tuple(JobRequest.from_dict(entry)
                             for entry in raw_requests)
        except JobError as error:
            raise CampaignSpecError(
                f"stage {payload.get('name')!r}: {error}") from None
        return cls(
            name=payload.get("name", ""),
            requests=requests,
            parameterize=payload.get("parameterize"),
            hook_args=dict(payload.get("hook_args") or {}),
            on_failure=payload.get("on_failure", "stop"),
            batch=payload.get("batch", False),
            priority=payload.get("priority", 0),
            use_cache=payload.get("use_cache", True),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered, named sequence of stages."""

    name: str
    stages: Tuple[StageSpec, ...]
    title: str = ""
    description: str = ""
    tags: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise CampaignSpecError("a campaign needs a non-empty name")
        if not self.stages:
            raise CampaignSpecError(
                f"campaign {self.name!r} needs at least one stage")
        for entry in self.stages:
            if not isinstance(entry, StageSpec):
                raise CampaignSpecError(
                    f"campaign {self.name!r}: stages must be StageSpec "
                    f"objects, got {entry!r}")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise CampaignSpecError(
                f"campaign {self.name!r}: stage names must be unique, "
                f"got {names}")

    def as_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready form (the journal's on-disk representation,
        and the fingerprint input)."""
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "stages": [stage.as_dict() for stage in self.stages],
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CampaignSpec":
        """Build a campaign from a JSON payload, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise CampaignSpecError("a campaign must be a JSON object")
        known = {"name", "title", "description", "stages", "tags"}
        unknown = set(payload) - known
        if unknown:
            raise CampaignSpecError(
                f"unknown campaign fields: {', '.join(sorted(unknown))}")
        raw_stages = payload.get("stages", [])
        if not isinstance(raw_stages, (list, tuple)):
            raise CampaignSpecError("campaign stages must be a list")
        return cls(
            name=payload.get("name", ""),
            title=payload.get("title", ""),
            description=payload.get("description", ""),
            stages=tuple(StageSpec.from_dict(entry) for entry in raw_stages),
            tags=tuple(payload.get("tags", ())),
        )

    def fingerprint(self) -> str:
        """Canonical digest of the whole spec (stable across restarts)."""
        canonical = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def stage_fingerprint(stage_name: str,
                      requests: Sequence[JobRequest]) -> str:
    """Digest of one stage's *resolved* submissions.

    Parameterize hooks are deterministic functions of the previous stage's
    results, and results are deterministic, so a resumed campaign resolves
    every stage to the same requests — equal fingerprints across a restart
    are how the resume tests pin "same work, not re-run" (the actual
    no-recompute guarantee is the job-level fingerprint dedup these request
    digests feed).
    """
    canonical = json.dumps(
        {"stage": stage_name,
         "requests": [request.as_dict() for request in requests]},
        sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
