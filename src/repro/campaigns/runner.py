"""Campaign records and the stage-driving runner.

A :class:`CampaignRecord` is to a campaign what a
:class:`~repro.service.jobs.Job` is to a request: lifecycle state, per-stage
:class:`StageRecord`\\ s, and an event waiters can block on.  The
:class:`CampaignRunner` drives a record's stages against an
:class:`~repro.service.core.EvaluationService`: each stage resolves its
submissions (static requests plus the parameterize hook over the previous
stage's results), submits them, waits for completion, applies the stage's
failure policy, and feeds the surviving results forward.

Resume is deliberately *re-derivation, not checkpoint restore*: a resumed
campaign re-drives every stage from the top, and the no-recompute guarantee
comes from the job layer — completed jobs replayed from the journal sit in
the result store under their request fingerprints, so a re-driven stage's
submissions return terminal jobs instantly (counted per stage as
``dedup_hits``).  Deterministic hooks over deterministic results regenerate
identical requests, pinned by the per-stage :func:`stage_fingerprint`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.campaigns.hooks import get_parameterizer, resolve_hook_output
from repro.campaigns.spec import CampaignSpec, StageSpec, stage_fingerprint
from repro.errors import TeamPlayError
from repro.service.jobs import BatchResult, Job, JobRequest, JobState

#: How often a waiting campaign re-checks for cancellation/shutdown.
_WAIT_POLL_S = 0.1


class CampaignError(TeamPlayError):
    """Raised for unknown campaigns and failed-campaign result fetches."""


class CampaignState(str, Enum):
    """Lifecycle of a campaign: pending → running → one terminal state."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (CampaignState.SUCCEEDED, CampaignState.FAILED,
                        CampaignState.CANCELLED)


class StageState(str, Enum):
    """Lifecycle of one stage within a campaign."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    #: Never ran: the campaign stopped earlier, was cancelled, or the stage
    #: resolved to zero submissions.
    SKIPPED = "skipped"


@dataclass
class StageRecord:
    """Execution state of one stage of one campaign."""

    name: str
    index: int
    on_failure: str
    state: StageState = StageState.PENDING
    #: Digest of the stage's resolved submissions (see
    #: :func:`~repro.campaigns.spec.stage_fingerprint`).
    fingerprint: Optional[str] = None
    job_ids: List[str] = field(default_factory=list)
    #: Number of submissions the stage made (batch stages: 1).
    jobs: int = 0
    #: Submissions answered by an already-terminal job — a store/dedup hit,
    #: the resume path's "no re-execution" signal.
    dedup_hits: int = 0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    wall_s: Optional[float] = None
    error: Optional[str] = None
    #: The stage's successful :class:`ScenarioResult` objects, in
    #: submission order (what the next stage's hook receives).
    results: List[object] = field(default_factory=list, repr=False)
    #: JSON summaries of ``results`` (journaled, so restored records keep
    #: their per-stage outputs across restarts).
    result_summaries: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self, include_results: bool = True) -> Dict[str, object]:
        """JSON-ready stage document (the HTTP campaign view's rows)."""
        document: Dict[str, object] = {
            "name": self.name,
            "index": self.index,
            "state": self.state.value,
            "on_failure": self.on_failure,
            "fingerprint": self.fingerprint,
            "job_ids": list(self.job_ids),
            "jobs": self.jobs,
            "dedup_hits": self.dedup_hits,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_s": self.wall_s,
        }
        if self.error is not None:
            document["error"] = self.error
        if include_results:
            document["results"] = [dict(entry)
                                   for entry in self.result_summaries]
        return document


@dataclass
class CampaignRecord:
    """One submitted campaign: its spec plus lifecycle state."""

    id: str
    spec: CampaignSpec
    priority: int = 0
    state: CampaignState = CampaignState.PENDING
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    stages: List[StageRecord] = field(default_factory=list)
    #: Restored from a journal after a restart (stages re-derive through
    #: the job-level dedup instead of recomputing).
    resumed: bool = False
    #: Set when the campaign reaches a terminal state.
    done: threading.Event = field(default_factory=threading.Event,
                                  repr=False)
    #: Cooperative cancellation flag, checked between waits.
    cancel_event: threading.Event = field(default_factory=threading.Event,
                                          repr=False)

    def __post_init__(self):
        if not self.stages:
            self.reset_stages()

    def reset_stages(self) -> None:
        """Fresh per-stage records matching the spec (used on resume)."""
        self.stages = [
            StageRecord(name=stage.name, index=index,
                        on_failure=stage.on_failure)
            for index, stage in enumerate(self.spec.stages)
        ]

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the campaign is terminal; ``False`` on timeout."""
        return self.done.wait(timeout)

    def as_dict(self, include_results: bool = True) -> Dict[str, object]:
        """JSON-ready campaign document (the HTTP API's view)."""
        document: Dict[str, object] = {
            "id": self.id,
            "name": self.spec.name,
            "title": self.spec.title,
            "state": self.state.value,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "resumed": self.resumed,
            "cancel_requested": self.cancel_event.is_set(),
            "stages": [stage.as_dict(include_results=include_results)
                       for stage in self.stages],
        }
        if self.error is not None:
            document["error"] = self.error
        return document


def restore_campaign_records(events: Sequence[Dict[str, object]]
                             ) -> List[CampaignRecord]:
    """Rebuild campaign records from journaled campaign events.

    Mirrors :meth:`~repro.service.journal.JobJournal.replay` for jobs:
    records come back in submission order, each in its last journaled
    state.  Non-terminal records are the restart's resume backlog — the
    service re-drives them once its worker pool starts.
    """
    records: Dict[str, CampaignRecord] = {}
    order: List[str] = []
    for event in events:
        kind = event.get("event")
        if kind == "campaign_submit":
            record = CampaignRecord(
                id=event["id"],
                spec=CampaignSpec.from_dict(event["spec"]),
                priority=int(event.get("priority", 0)),
            )
            record.submitted_at = float(event["submitted_at"])
            records[record.id] = record
            order.append(record.id)
            continue
        record = records.get(event.get("id"))
        if record is None:
            continue  # stage/finish without its submit line (torn copy)
        if kind == "campaign_stage":
            index = event.get("index")
            if not isinstance(index, int) \
                    or not 0 <= index < len(record.stages):
                continue
            stage = record.stages[index]
            stage.state = StageState(event.get("state", "pending"))
            stage.fingerprint = event.get("fingerprint")
            stage.job_ids = list(event.get("job_ids", ()))
            stage.jobs = int(event.get("jobs", len(stage.job_ids)))
            stage.dedup_hits = int(event.get("dedup_hits", 0))
            stage.started_at = event.get("started_at")
            stage.finished_at = event.get("finished_at")
            stage.wall_s = event.get("wall_s")
            stage.error = event.get("error")
            stage.result_summaries = list(event.get("results", ()))
        elif kind == "campaign_finish":
            record.state = CampaignState(event.get("state", "failed"))
            record.started_at = event.get("started_at")
            record.finished_at = event.get("finished_at")
            record.error = event.get("error")
            if record.state.terminal:
                record.done.set()
    return [records[record_id] for record_id in order]


class CampaignRunner:
    """Drives one campaign's stages against an evaluation service.

    The runner is synchronous — :meth:`run` returns when the campaign is
    terminal (or abandoned because the service closed); the service wraps
    it in a per-campaign thread for the asynchronous submit API.  The
    ``journal`` (when present) receives a ``campaign_stage`` event per
    completed stage and a final ``campaign_finish``, which is what makes
    interrupted campaigns resumable.
    """

    def __init__(self, service, journal=None):
        self.service = service
        self.journal = journal

    # -------------------------------------------------------------- the drive --
    def run(self, record: CampaignRecord) -> CampaignRecord:
        """Drive ``record`` to a terminal state (mutating it in place)."""
        record.state = CampaignState.RUNNING
        record.started_at = time.time()
        if record.resumed:
            record.reset_stages()
        previous_results: List[object] = []
        failed_error: Optional[str] = None
        for stage_spec, stage in zip(record.spec.stages, record.stages):
            if failed_error is not None or record.cancel_event.is_set():
                break  # the remaining stages are marked skipped in _finish
            outcome = self._run_stage(record, stage_spec, stage,
                                      previous_results)
            if outcome is None:
                return record  # service closing: leave non-terminal, resume later
            if record.cancel_event.is_set():
                break
            if stage.state is StageState.FAILED:
                if stage_spec.on_failure == "stop":
                    failed_error = (f"stage {stage.name!r} failed: "
                                    f"{stage.error}")
                # "skip": previous results pass through unchanged.
                # "continue": the successful subset feeds forward.
                elif stage_spec.on_failure == "continue":
                    previous_results = outcome
            else:
                previous_results = outcome
        self._finish(record, failed_error)
        return record

    def _run_stage(self, record: CampaignRecord, stage_spec: StageSpec,
                   stage: StageRecord,
                   previous_results: List[object]
                   ) -> Optional[List[object]]:
        """Run one stage; returns its successful results (``None`` only
        when the service is closing and the campaign must be abandoned
        mid-flight for a later resume)."""
        stage.state = StageState.RUNNING
        stage.started_at = time.time()
        clock_start = time.monotonic()
        try:
            requests = self._resolve_requests(stage_spec, previous_results)
        except Exception as error:  # noqa: BLE001 — hook errors fail the stage
            self._finish_stage(record, stage, clock_start,
                               state=StageState.FAILED,
                               error=f"{type(error).__name__}: {error}")
            return []
        if not requests:
            # Nothing survived the hook's filter: the stage has no work,
            # and the previous results pass through to the next stage.
            self._finish_stage(record, stage, clock_start,
                               state=StageState.SKIPPED,
                               error=None)
            return previous_results
        stage.fingerprint = stage_fingerprint(stage_spec.name, requests)
        priority = record.priority + stage_spec.priority
        try:
            jobs = self._submit(stage_spec, requests, priority)
        except Exception as error:  # noqa: BLE001 — e.g. QueueFull
            self._finish_stage(record, stage, clock_start,
                               state=StageState.FAILED,
                               error=f"{type(error).__name__}: {error}")
            return []
        stage.job_ids = [job.id for job in jobs]
        stage.jobs = len(requests)
        # A submission answered by an already-terminal job never touched a
        # worker: that is the store/dedup (and resume-replay) fast path.
        stage.dedup_hits = sum(job.done.is_set() for job in jobs)
        if not self._wait_for(record, jobs):
            if record.cancel_event.is_set():
                self._cancel_stage_jobs(jobs)
                self._finish_stage(record, stage, clock_start,
                                   state=StageState.SKIPPED,
                                   error="campaign cancelled")
                return previous_results
            return None  # service closing
        results, errors = self._collect(stage_spec, jobs, requests)
        stage.results = results
        stage.result_summaries = [result.summary() for result in results]
        if errors:
            self._finish_stage(record, stage, clock_start,
                               state=StageState.FAILED,
                               error="; ".join(errors))
        else:
            self._finish_stage(record, stage, clock_start,
                               state=StageState.SUCCEEDED, error=None)
        return results

    # ------------------------------------------------------------- stage parts --
    def _resolve_requests(self, stage_spec: StageSpec,
                          previous_results: List[object]
                          ) -> List[JobRequest]:
        requests = list(stage_spec.requests)
        if stage_spec.parameterize is not None:
            hook = get_parameterizer(stage_spec.parameterize)
            output = hook(list(previous_results), **stage_spec.hook_args)
            requests.extend(resolve_hook_output(stage_spec.name, output))
        return requests

    def _submit(self, stage_spec: StageSpec,
                requests: List[JobRequest], priority: int) -> List[Job]:
        if stage_spec.batch:
            return [self.service.submit_batch(
                requests, priority=priority,
                use_cache=stage_spec.use_cache)]
        return [
            self.service.submit(
                request.scenario,
                generations=request.generations,
                population_size=request.population_size,
                profiling_runs=request.profiling_runs,
                postprocess=request.postprocess,
                priority=priority,
                use_cache=stage_spec.use_cache)
            for request in requests
        ]

    def _wait_for(self, record: CampaignRecord, jobs: List[Job]) -> bool:
        """Wait for every job; ``False`` on cancellation or shutdown."""
        for job in jobs:
            while not job.wait(_WAIT_POLL_S):
                if record.cancel_event.is_set():
                    return False
                if getattr(self.service, "closed", False):
                    return False
        return True

    def _cancel_stage_jobs(self, jobs: List[Job]) -> None:
        """Withdraw the cancelled stage's still-pending, unshared jobs.

        Jobs other submitters coalesced onto (``submissions > 1``) are left
        running — cancelling a campaign must not kill a computation someone
        else is waiting for.
        """
        for job in jobs:
            if not job.done.is_set() and job.submissions == 1:
                self.service.cancel(job.id)

    def _collect(self, stage_spec: StageSpec, jobs: List[Job],
                 requests: List[JobRequest]):
        """Successful results (request order) and per-job error strings."""
        results: List[object] = []
        errors: List[str] = []
        for job in jobs:
            if job.state is JobState.SUCCEEDED:
                if isinstance(job.result, BatchResult):
                    results.extend(job.result.results)
                else:
                    results.append(job.result)
            else:
                errors.append(f"job {job.id} "
                              f"({job.request.fingerprint()[:12]}): "
                              f"{job.error or job.state.value}")
        return results, errors

    def _finish_stage(self, record: CampaignRecord, stage: StageRecord,
                      clock_start: float, state: StageState,
                      error: Optional[str]) -> None:
        stage.state = state
        stage.error = error
        stage.finished_at = time.time()
        stage.wall_s = time.monotonic() - clock_start
        if self.journal is not None:
            self.journal.record_campaign_stage(record, stage)

    def _finish(self, record: CampaignRecord,
                failed_error: Optional[str]) -> None:
        # Stages the campaign never reached (stopped-on-failure or
        # cancelled) are journaled as skipped so a restored record shows
        # the same per-stage states the live one did.
        now = time.time()
        for stage in record.stages:
            if stage.state in (StageState.PENDING, StageState.RUNNING):
                stage.state = StageState.SKIPPED
                stage.finished_at = now
                if self.journal is not None:
                    self.journal.record_campaign_stage(record, stage)
        record.finished_at = now
        if record.cancel_event.is_set():
            record.state = CampaignState.CANCELLED
            record.error = record.error or "cancelled"
        elif failed_error is not None:
            record.state = CampaignState.FAILED
            record.error = failed_error
        else:
            record.state = CampaignState.SUCCEEDED
        if self.journal is not None:
            self.journal.record_campaign_finish(record)
        record.done.set()
