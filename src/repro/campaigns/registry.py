"""Registry of named campaign specifications.

Mirrors the scenario registry's idiom: library modules call
``register_campaign(CampaignSpec(...))`` at import time, the built-in
library (:mod:`repro.campaigns.library`) loads lazily on first lookup, and
callers — the service facade, the HTTP API's ``{"campaign": name}`` form,
and the ``python -m repro.service campaign`` CLI — resolve campaigns by
name.
"""

from __future__ import annotations

import importlib
import threading
from typing import Dict, List, Optional

from repro.campaigns.spec import CampaignSpec, CampaignSpecError
from repro.errors import TeamPlayError


class CampaignRegistryError(TeamPlayError):
    """Raised for duplicate registrations and other registry misuse."""


class UnknownCampaignError(CampaignRegistryError, KeyError):
    """Raised when a campaign name is not registered."""


_REGISTRY: Dict[str, CampaignSpec] = {}
_builtins_loaded = False
#: Serialises the lazy builtin import (service threads may look campaigns
#: up concurrently); reentrant so the library module can consult the
#: registry while registering without deadlocking on its own import.
_builtins_lock = threading.RLock()


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    with _builtins_lock:
        if _builtins_loaded:
            return
        _builtins_loaded = True
        before = set(_REGISTRY)
        try:
            importlib.import_module("repro.campaigns.library")
        except BaseException:
            # Roll back the partial registrations so the failure resurfaces
            # on the next lookup instead of leaving a silently partial
            # registry (the scenario registry's contract).
            for name in set(_REGISTRY) - before:
                del _REGISTRY[name]
            _builtins_loaded = False
            raise


def register_campaign(spec: CampaignSpec,
                      replace: bool = False) -> CampaignSpec:
    """Register ``spec`` under its name; duplicate names are an error.

    Returns the spec so library modules can write
    ``CAMPAIGN = register_campaign(CampaignSpec(...))``.
    """
    if not isinstance(spec, CampaignSpec):
        raise CampaignSpecError(
            f"register_campaign needs a CampaignSpec, got {spec!r}")
    with _builtins_lock:
        if spec.name in _REGISTRY and not replace:
            raise CampaignRegistryError(
                f"campaign {spec.name!r} is already registered")
        _REGISTRY[spec.name] = spec
    return spec


def unregister_campaign(name: str) -> Optional[CampaignSpec]:
    """Remove a campaign by name; returns it (``None`` if unknown)."""
    with _builtins_lock:
        return _REGISTRY.pop(name, None)


def get_campaign(name: str) -> CampaignSpec:
    """Look a campaign up by name (built-ins load lazily)."""
    _ensure_builtins()
    with _builtins_lock:
        spec = _REGISTRY.get(name)
    if spec is None:
        raise UnknownCampaignError(
            f"unknown campaign {name!r}; registered: "
            f"{[s.name for s in list_campaigns()]}")
    return spec


def list_campaigns() -> List[CampaignSpec]:
    """Every registered campaign, sorted by name."""
    _ensure_builtins()
    with _builtins_lock:
        return [spec for _, spec in sorted(_REGISTRY.items())]
