"""Built-in parameterize hooks and library campaigns.

The hooks turn a stage's :class:`~repro.scenarios.spec.ScenarioResult`\\ s
into the next stage's submissions using the selection vocabulary from
:mod:`repro.scenarios.selection`; the campaigns mirror the paper's staged
studies — a broad design-space search whose survivors are refined at a
larger budget and then validated on companion deployments.

Campaign factories (``make_search_refine_validate`` etc.) are exported so
tests, examples and downstream users can instantiate the same staged shapes
over their own scenarios and budgets; the module-level registrations bind
them to the paper's use cases.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.campaigns.hooks import register_parameterizer
from repro.campaigns.registry import register_campaign
from repro.campaigns.spec import CampaignSpec, StageSpec
from repro.scenarios.selection import (
    improving_results,
    pareto_results,
    scenario_names,
    top_by_energy_improvement,
)
from repro.service.jobs import JobRequest


def _requests_for(names: Sequence[str],
                  generations: Optional[int] = None,
                  population_size: Optional[int] = None,
                  profiling_runs: Optional[int] = None,
                  postprocess: bool = True) -> List[JobRequest]:
    """One request per scenario name, sharing one budget override."""
    return [
        JobRequest(scenario=name,
                   generations=generations,
                   population_size=population_size,
                   profiling_runs=profiling_runs,
                   postprocess=postprocess)
        for name in names
    ]


# ---------------------------------------------------------------------------
# Built-in parameterize hooks
# ---------------------------------------------------------------------------
def top_energy_refine(results, k: int = 2,
                      generations: Optional[int] = None,
                      population_size: Optional[int] = None,
                      profiling_runs: Optional[int] = None,
                      postprocess: bool = True) -> List[JobRequest]:
    """Re-run the ``k`` best scenarios by energy improvement at a new
    (typically larger) budget."""
    winners = top_by_energy_improvement(results, k=k)
    return _requests_for(scenario_names(winners), generations,
                         population_size, profiling_runs, postprocess)


def pareto_refine(results,
                  generations: Optional[int] = None,
                  population_size: Optional[int] = None,
                  profiling_runs: Optional[int] = None,
                  postprocess: bool = True) -> List[JobRequest]:
    """Re-run the (time, energy) Pareto survivors at a new budget."""
    front = pareto_results(results)
    return _requests_for(scenario_names(front), generations,
                         population_size, profiling_runs, postprocess)


def still_improving(results, min_energy_improvement_pct: float = 0.0,
                    generations: Optional[int] = None,
                    population_size: Optional[int] = None,
                    profiling_runs: Optional[int] = None,
                    postprocess: bool = True) -> List[JobRequest]:
    """Re-run every scenario still improving beyond the threshold."""
    keep = improving_results(
        results, min_energy_improvement_pct=min_energy_improvement_pct)
    return _requests_for(scenario_names(keep), generations,
                         population_size, profiling_runs, postprocess)


def companion_deployments(results, siblings: Optional[Dict[str, list]] = None,
                          include_winners: bool = True,
                          generations: Optional[int] = None,
                          population_size: Optional[int] = None,
                          profiling_runs: Optional[int] = None,
                          postprocess: bool = True) -> List[JobRequest]:
    """Validate the previous stage's scenarios on companion deployments.

    ``siblings`` maps a scenario name to the registry names it should be
    validated against (same workload family on another platform or
    deployment); ``include_winners=False`` submits only the companions.
    """
    siblings = siblings or {}
    names: List[str] = []
    for winner in scenario_names(results):
        if include_winners and winner not in names:
            names.append(winner)
        for companion in siblings.get(winner, ()):
            if companion not in names:
                names.append(companion)
    return _requests_for(names, generations, population_size,
                         profiling_runs, postprocess)


register_parameterizer("top-energy-refine", top_energy_refine)
register_parameterizer("pareto-refine", pareto_refine)
register_parameterizer("still-improving", still_improving)
register_parameterizer("companion-deployments", companion_deployments)


# ---------------------------------------------------------------------------
# Campaign factories
# ---------------------------------------------------------------------------
def make_search_refine_validate(
        name: str,
        scenarios: Sequence[str],
        siblings: Optional[Dict[str, list]] = None,
        search_budget: Optional[Dict[str, int]] = None,
        refine_budget: Optional[Dict[str, int]] = None,
        validate_budget: Optional[Dict[str, int]] = None,
        keep: int = 2,
        title: str = "",
        description: str = "") -> CampaignSpec:
    """The paper's staged-study shape as a reusable three-stage campaign.

    ``search`` sweeps ``scenarios`` at a small budget, ``refine`` re-runs
    the ``keep`` best (by energy improvement) at a larger budget, and
    ``validate`` runs the refined winners plus their ``siblings`` —
    companion deployments of the same workload family.  Budgets are request
    overrides (``generations``/``population_size``/``profiling_runs``).
    """
    search_budget = search_budget or {"generations": 1, "population_size": 4}
    refine_budget = refine_budget or {"generations": 3, "population_size": 6}
    validate_budget = validate_budget or dict(search_budget)
    return CampaignSpec(
        name=name,
        title=title or f"search → refine → validate over {len(scenarios)} "
                       f"scenarios",
        description=description,
        stages=(
            StageSpec(name="search",
                      requests=tuple(_requests_for(scenarios,
                                                   **search_budget))),
            StageSpec(name="refine",
                      parameterize="top-energy-refine",
                      hook_args=dict(refine_budget, k=keep)),
            StageSpec(name="validate",
                      parameterize="companion-deployments",
                      hook_args=dict(validate_budget,
                                     siblings=dict(siblings or {}))),
        ),
        tags=("library", "staged"),
    )


def make_budget_escalation(
        name: str,
        scenarios: Sequence[str],
        coarse: Optional[Dict[str, int]] = None,
        focus: Optional[Dict[str, int]] = None,
        confirm: Optional[Dict[str, int]] = None,
        min_energy_improvement_pct: float = 0.0,
        title: str = "") -> CampaignSpec:
    """Escalate search budgets, keeping only what still pays off."""
    coarse = coarse or {"generations": 1, "population_size": 2}
    focus = focus or {"generations": 2, "population_size": 4}
    confirm = confirm or {"generations": 3, "population_size": 6}
    return CampaignSpec(
        name=name,
        title=title or "escalating-budget sweep",
        stages=(
            StageSpec(name="coarse",
                      requests=tuple(_requests_for(scenarios, **coarse)),
                      on_failure="continue"),
            StageSpec(name="focus",
                      parameterize="still-improving",
                      hook_args=dict(
                          focus,
                          min_energy_improvement_pct=(
                              min_energy_improvement_pct))),
            StageSpec(name="confirm",
                      parameterize="top-energy-refine",
                      hook_args=dict(confirm, k=1)),
        ),
        tags=("library", "ablation"),
    )


#: Which registered scenario validates which winner: the same workload
#: family on a second platform/deployment (the reproduction's stand-in for
#: the paper's cross-platform validation runs).
PAPER_SIBLINGS: Dict[str, list] = {
    "camera-pill": ["ecg-wearable"],
    "space-spacewire": ["smart-meter"],
    "uav-sar": ["uav-pa"],
}

#: The flagship staged study: broad search over the paper's E1/E2/E3
#: workloads, refinement of the two best, validation on companion
#: deployments.
SEARCH_REFINE_VALIDATE = register_campaign(make_search_refine_validate(
    name="search-refine-validate",
    scenarios=("camera-pill", "space-spacewire", "uav-sar"),
    siblings=PAPER_SIBLINGS,
    description="Broad E1/E2/E3 search at a small budget, refinement of "
                "the two best energy improvers at the paper budget, "
                "validation on companion deployments.",
))

#: The ablation-flavoured escalation study over the predictable workloads.
BUDGET_ESCALATION = register_campaign(make_budget_escalation(
    name="budget-escalation",
    scenarios=("camera-pill", "space-spacewire", "ecg-wearable",
               "smart-meter"),
    title="escalating-budget sweep over the predictable workloads",
))

#: The deep-learning cross-platform study: profile the TK1 deployment
#: (E6), then run the M0 kernel-variant table (E5) as its validation — two
#: static stages, the minimal chained shape.
DL_CROSS_PLATFORM = register_campaign(CampaignSpec(
    name="dl-cross-platform",
    title="deep-learning deployment: TK1 profile, then M0 validation",
    description="Profile the parking-net TK1 deployment (E6), then run "
                "the Cortex-M0 kernel-variant study (E5) to validate the "
                "chosen network on the second platform.",
    stages=(
        StageSpec(name="tk1-profile",
                  requests=(JobRequest(scenario="parking-dl-tk1"),)),
        StageSpec(name="m0-validate",
                  requests=(JobRequest(scenario="parking-dl-m0"),),
                  on_failure="stop"),
    ),
    tags=("library", "deep-learning"),
))
