"""Durable multi-stage sweep campaigns over the evaluation service.

The orchestration layer above the job queue: where the service (PR 3/6)
runs flat batches, a *campaign* chains them — a broad design-space search
whose survivors are refined at a larger budget and then validated on
companion deployments, the paper's staged-study shape.

* :class:`CampaignSpec` / :class:`StageSpec` — pure-data descriptions of
  ordered stages; each stage submits static
  :class:`~repro.service.jobs.JobRequest`\\ s and/or the output of a named
  *parameterize hook* over the previous stage's results, with a per-stage
  failure policy (``stop`` / ``skip`` / ``continue``),
* :mod:`repro.campaigns.hooks` — the registry hooks travel through by
  name, keeping specs JSON-serialisable for HTTP, spec files and the
  journal,
* :class:`CampaignRunner` / :class:`CampaignRecord` — the stage driver and
  its job-style lifecycle record,
* :mod:`repro.campaigns.library` — built-in hooks plus registered library
  campaigns mirroring the paper's staged studies
  (``search-refine-validate``, ``budget-escalation``,
  ``dl-cross-platform``).

The service facade exposes campaigns everywhere jobs go:
``EvaluationService.submit_campaign``, ``POST /campaigns`` /
``GET /campaigns[/<id>]`` / ``DELETE /campaigns/<id>`` over HTTP, a
``campaigns`` section in ``GET /stats``, and ``python -m repro.service
campaign`` on the CLI.  Campaign lifecycle events live in the persistent
job journal, so an interrupted campaign resumes after a restart — completed
stages re-derive through the job-level fingerprint dedup instead of
recomputing (see ``docs/campaigns.md``).

In-process quickstart::

    from repro.service import EvaluationService

    with EvaluationService(workers=2) as service:
        record = service.submit_campaign("dl-cross-platform")
        record = service.campaign_result(record.id, timeout=600)
        for stage in record.stages:
            print(stage.name, stage.state.value, stage.wall_s)
"""

from repro.campaigns.hooks import (
    CampaignHookError,
    get_parameterizer,
    list_parameterizers,
    register_parameterizer,
    unregister_parameterizer,
)
from repro.campaigns.registry import (
    CampaignRegistryError,
    UnknownCampaignError,
    get_campaign,
    list_campaigns,
    register_campaign,
    unregister_campaign,
)
from repro.campaigns.runner import (
    CampaignError,
    CampaignRecord,
    CampaignRunner,
    CampaignState,
    StageRecord,
    StageState,
    restore_campaign_records,
)
from repro.campaigns.spec import (
    ON_FAILURE,
    CampaignSpec,
    CampaignSpecError,
    StageSpec,
    stage_fingerprint,
)

__all__ = [
    "ON_FAILURE",
    "CampaignError",
    "CampaignHookError",
    "CampaignRecord",
    "CampaignRegistryError",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignSpecError",
    "CampaignState",
    "StageRecord",
    "StageSpec",
    "StageState",
    "UnknownCampaignError",
    "get_campaign",
    "get_parameterizer",
    "list_campaigns",
    "list_parameterizers",
    "register_campaign",
    "register_parameterizer",
    "restore_campaign_records",
    "stage_fingerprint",
    "unregister_campaign",
    "unregister_parameterizer",
]
