"""Registry of named parameterize hooks.

A parameterize hook turns the previous stage's
:class:`~repro.scenarios.spec.ScenarioResult`\\ s into the next stage's
:class:`~repro.service.jobs.JobRequest`\\ s::

    def hook(results: List[ScenarioResult], **hook_args) -> requests

where ``requests`` is a sequence of :class:`JobRequest` objects or
JSON-style request dicts (parsed through :meth:`JobRequest.from_dict`).
Hooks travel *by name* so campaign specs stay serialisable — over HTTP, in
spec files, and through the persistent journal.  Hooks must be
deterministic: a resumed campaign re-resolves every stage, and only a
deterministic hook regenerates the same requests (whose fingerprints then
hit the cross-restart job dedup instead of recomputing).

The built-in hooks (registered by :mod:`repro.campaigns.library`) cover the
paper's staged-study shapes: keep the top-*k* by energy improvement, keep
the (time, energy) Pareto survivors, keep whatever still improves, and fan
winners out to companion deployments.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Sequence, Union

from repro.errors import TeamPlayError
from repro.service.jobs import JobError, JobRequest

#: What a hook returns: requests, as objects or JSON-style dicts.
HookOutput = Sequence[Union[JobRequest, Dict[str, object]]]
Parameterizer = Callable[..., HookOutput]


class CampaignHookError(TeamPlayError):
    """Raised for unknown/duplicate hook names and malformed hook output."""


_HOOKS: Dict[str, Parameterizer] = {}
_hooks_lock = threading.Lock()


def register_parameterizer(name: str, hook: Parameterizer,
                           replace: bool = False) -> Parameterizer:
    """Register ``hook`` under ``name``; duplicate names are an error."""
    if not name or not isinstance(name, str):
        raise CampaignHookError("a parameterize hook needs a non-empty name")
    if not callable(hook):
        raise CampaignHookError(f"hook {name!r} must be callable")
    with _hooks_lock:
        if name in _HOOKS and not replace:
            raise CampaignHookError(
                f"parameterize hook {name!r} is already registered")
        _HOOKS[name] = hook
    return hook


def unregister_parameterizer(name: str) -> None:
    """Remove a registered hook (no-op for unknown names)."""
    with _hooks_lock:
        _HOOKS.pop(name, None)


def get_parameterizer(name: str) -> Parameterizer:
    """Look a hook up by name (built-ins load lazily on first miss)."""
    with _hooks_lock:
        hook = _HOOKS.get(name)
    if hook is None:
        # The library registers the built-in hooks on import; loading it
        # lazily keeps ``import repro.campaigns`` light.
        import repro.campaigns.library  # noqa: F401 - registration side effect
        with _hooks_lock:
            hook = _HOOKS.get(name)
    if hook is None:
        with _hooks_lock:
            known = sorted(_HOOKS)
        raise CampaignHookError(
            f"unknown parameterize hook {name!r}; registered: {known}")
    return hook


def list_parameterizers() -> List[str]:
    """Names of every registered hook, sorted."""
    import repro.campaigns.library  # noqa: F401 - registration side effect
    with _hooks_lock:
        return sorted(_HOOKS)


def resolve_hook_output(stage_name: str, output: HookOutput
                        ) -> List[JobRequest]:
    """Normalise a hook's output into :class:`JobRequest` objects."""
    if output is None:
        return []
    if isinstance(output, (JobRequest, dict)):
        raise CampaignHookError(
            f"stage {stage_name!r}: the parameterize hook must return a "
            f"sequence of requests, got a single {type(output).__name__}")
    requests: List[JobRequest] = []
    for index, entry in enumerate(output):
        if isinstance(entry, JobRequest):
            requests.append(entry)
            continue
        try:
            requests.append(JobRequest.from_dict(entry))
        except JobError as error:
            raise CampaignHookError(
                f"stage {stage_name!r}: hook output entry {index} is not a "
                f"valid job request: {error}") from None
    return requests
