"""Communication substrates used by the use cases.

* :mod:`repro.net.spacewire` — the SpaceWire on-board link of the space use
  case (character-level encoding overhead, packetisation, link power),
* :mod:`repro.net.radio` — the low-power radio of the camera pill and the
  UAV downlink.
"""

from repro.net.spacewire import SpaceWireLink, SpaceWirePacket
from repro.net.radio import RadioLink

__all__ = ["RadioLink", "SpaceWireLink", "SpaceWirePacket"]
