"""SpaceWire link model.

SpaceWire (ECSS-E-ST-50-12C) is the on-board network used by the paper's
space use case to move images between processing nodes.  The model captures
the properties that matter for ETS reasoning:

* data characters are 10 bits on the wire (8 data bits + parity + data/control
  flag), so the effective byte rate is ``link_rate / 10``,
* each packet carries an address header and is terminated by an end-of-packet
  marker,
* the link consumes ``active_power_w`` while transmitting and
  ``idle_power_w`` while idle (the standard's idle tokens keep the link
  running).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import PlatformError

#: Bits on the wire per transmitted data byte (8 data + parity + flag).
BITS_PER_DATA_CHAR = 10
#: Bits on the wire of an end-of-packet control character.
BITS_PER_EOP_CHAR = 4


@dataclass(frozen=True)
class SpaceWirePacket:
    """One SpaceWire packet: destination address path + cargo."""

    address_bytes: int
    cargo_bytes: int

    @property
    def wire_bits(self) -> int:
        data_bits = (self.address_bytes + self.cargo_bytes) * BITS_PER_DATA_CHAR
        return data_bits + BITS_PER_EOP_CHAR


@dataclass
class SpaceWireLink:
    """A point-to-point SpaceWire link."""

    link_rate_mbps: float = 100.0
    max_packet_bytes: int = 4096
    address_bytes: int = 1
    active_power_w: float = 0.12
    idle_power_w: float = 0.03

    def __post_init__(self):
        if self.link_rate_mbps <= 0:
            raise PlatformError("SpaceWire link rate must be positive")
        if self.max_packet_bytes <= 0:
            raise PlatformError("packet size must be positive")

    # -- packetisation ---------------------------------------------------------
    def packetize(self, payload_bytes: int) -> List[SpaceWirePacket]:
        """Split a payload into maximum-size packets."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        if payload_bytes == 0:
            return []
        packets = []
        remaining = payload_bytes
        while remaining > 0:
            cargo = min(remaining, self.max_packet_bytes)
            packets.append(SpaceWirePacket(self.address_bytes, cargo))
            remaining -= cargo
        return packets

    def packet_count(self, payload_bytes: int) -> int:
        return math.ceil(payload_bytes / self.max_packet_bytes) if payload_bytes else 0

    # -- time and energy ----------------------------------------------------------
    def transfer_time_s(self, payload_bytes: int) -> float:
        """Time to push the payload (with packet overheads) over the link."""
        bits = sum(packet.wire_bits for packet in self.packetize(payload_bytes))
        return bits / (self.link_rate_mbps * 1e6)

    def transfer_energy_j(self, payload_bytes: int) -> float:
        """Energy attributable to the transfer itself (above idle)."""
        return (self.active_power_w - self.idle_power_w) \
            * self.transfer_time_s(payload_bytes)

    def window_energy_j(self, payload_bytes: int, window_s: float) -> float:
        """Energy of the link over a window containing one transfer."""
        transfer = self.transfer_time_s(payload_bytes)
        if transfer > window_s + 1e-12:
            raise PlatformError(
                f"transfer of {payload_bytes} bytes ({transfer:.6f}s) does not "
                f"fit in a {window_s}s window")
        return (self.active_power_w * transfer
                + self.idle_power_w * (window_s - transfer))

    def effective_bandwidth_bytes_per_s(self) -> float:
        """Payload bytes per second accounting for the char-level overhead."""
        return self.link_rate_mbps * 1e6 / BITS_PER_DATA_CHAR
