"""Low-power radio link model (camera pill uplink, UAV downlink)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError


@dataclass
class RadioLink:
    """A simple packetised radio with startup overhead.

    The camera pill transmits every captured (compressed, encrypted) frame to
    an external receiver; the dominant costs are the per-bit transmit energy
    and the transceiver wake-up overhead, both of which reward transmitting
    fewer bytes (i.e. compressing on the device).
    """

    bitrate_bps: float = 2_000_000.0
    energy_per_bit_j: float = 5.0e-9
    wakeup_time_s: float = 200e-6
    wakeup_energy_j: float = 3.0e-6
    max_payload_bytes: int = 256
    header_bytes: int = 6

    def __post_init__(self):
        if self.bitrate_bps <= 0:
            raise PlatformError("radio bitrate must be positive")
        if self.max_payload_bytes <= 0:
            raise PlatformError("radio payload size must be positive")

    def packet_count(self, payload_bytes: int) -> int:
        if payload_bytes <= 0:
            return 0
        full, rest = divmod(payload_bytes, self.max_payload_bytes)
        return full + (1 if rest else 0)

    def bytes_on_air(self, payload_bytes: int) -> int:
        return payload_bytes + self.packet_count(payload_bytes) * self.header_bytes

    def transmit_time_s(self, payload_bytes: int) -> float:
        if payload_bytes <= 0:
            return 0.0
        return (self.wakeup_time_s
                + self.bytes_on_air(payload_bytes) * 8 / self.bitrate_bps)

    def transmit_energy_j(self, payload_bytes: int) -> float:
        if payload_bytes <= 0:
            return 0.0
        return (self.wakeup_energy_j
                + self.bytes_on_air(payload_bytes) * 8 * self.energy_per_bit_j)
