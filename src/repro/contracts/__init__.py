"""Non-functional Properties Contract System.

The contract system formally checks that the ETS properties established by
the analysers and the coordination layer satisfy the budgets declared in the
CSL contract, and produces a :class:`Certificate` — the artefact the paper
proposes handing to certification authorities.  The checking style mirrors
the dependent-type formulation of Brown et al. (PPDP'19): every obligation is
discharged by explicit evidence (the analysed value, the bound, and the
derivation composing task-level facts into system-level ones).
"""

from repro.contracts.obligations import (
    CheckedObligation,
    Obligation,
    PROPERTY_ENERGY,
    PROPERTY_SECURITY,
    PROPERTY_TIME,
)
from repro.contracts.certificate import Certificate
from repro.contracts.checker import (
    ContractChecker,
    TaskEvidence,
    obligations_from_spec,
)

__all__ = [
    "Certificate",
    "CheckedObligation",
    "ContractChecker",
    "Obligation",
    "PROPERTY_ENERGY",
    "PROPERTY_SECURITY",
    "PROPERTY_TIME",
    "TaskEvidence",
    "obligations_from_spec",
]
