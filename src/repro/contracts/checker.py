"""The contract checker.

Obligations are extracted from a CSL contract and discharged against the
evidence available after analysis and scheduling:

* per-task WCET / energy / security (from the static analysers or the
  dynamic profiler),
* the schedule's makespan and total energy per period (from the coordination
  layer).

System-level facts are composed from task-level facts and the composition is
recorded in each checked obligation's derivation, in the spirit of the
dependent-type proofs of the paper's contract system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.contracts.certificate import Certificate
from repro.contracts.obligations import (
    CheckedObligation,
    Obligation,
    PROPERTY_ENERGY,
    PROPERTY_SECURITY,
    PROPERTY_TIME,
    RELATION_AT_LEAST,
    RELATION_AT_MOST,
)
from repro.coordination.schedulers import Schedule
from repro.csl.ast_nodes import ContractSpec
from repro.hw.platform import Platform


@dataclass
class TaskEvidence:
    """Analysed ETS properties of one task (one value per property)."""

    wcet_s: Optional[float] = None
    energy_j: Optional[float] = None
    security_level: Optional[float] = None


def obligations_from_spec(spec: ContractSpec) -> List[Obligation]:
    """Extract every provable statement from a CSL contract."""
    obligations: List[Obligation] = []
    for task in spec.tasks.values():
        if task.time_budget is not None:
            obligations.append(Obligation(
                subject=task.name, property=PROPERTY_TIME,
                relation=RELATION_AT_MOST, bound=task.time_budget.value,
                description=f"WCET budget of task {task.name}"))
        if task.energy_budget is not None:
            obligations.append(Obligation(
                subject=task.name, property=PROPERTY_ENERGY,
                relation=RELATION_AT_MOST, bound=task.energy_budget.value,
                description=f"energy budget of task {task.name}"))
        if task.security_level is not None:
            obligations.append(Obligation(
                subject=task.name, property=PROPERTY_SECURITY,
                relation=RELATION_AT_LEAST, bound=task.security_level,
                description=f"security level of task {task.name}"))
    if spec.deadline is not None:
        obligations.append(Obligation(
            subject="system", property=PROPERTY_TIME,
            relation=RELATION_AT_MOST, bound=spec.deadline.value,
            description="end-to-end deadline"))
    if spec.time_budget is not None:
        obligations.append(Obligation(
            subject="system", property=PROPERTY_TIME,
            relation=RELATION_AT_MOST, bound=spec.time_budget.value,
            description="end-to-end time budget"))
    if spec.energy_budget is not None:
        obligations.append(Obligation(
            subject="system", property=PROPERTY_ENERGY,
            relation=RELATION_AT_MOST, bound=spec.energy_budget.value,
            description="energy budget per period"))
    if spec.security_level is not None:
        obligations.append(Obligation(
            subject="system", property=PROPERTY_SECURITY,
            relation=RELATION_AT_LEAST, bound=spec.security_level,
            description="system-wide security level"))
    return obligations


class ContractChecker:
    """Discharges a contract's obligations against analysis evidence."""

    def __init__(self, platform: Platform):
        self.platform = platform

    def check(self, spec: ContractSpec,
              task_evidence: Dict[str, TaskEvidence],
              schedule: Optional[Schedule] = None,
              system_energy_j: Optional[float] = None) -> Certificate:
        """Produce a certificate for ``spec``.

        ``task_evidence`` maps task names to their analysed properties;
        ``schedule`` provides the makespan and (with the platform) the total
        energy per period unless ``system_energy_j`` overrides it.
        """
        spec.validate()
        certificate = Certificate(application=spec.system,
                                  platform=self.platform.name)
        window = spec.period_s() or spec.deadline_s()

        for obligation in obligations_from_spec(spec):
            if obligation.subject == "system":
                checked = self._check_system(obligation, spec, task_evidence,
                                             schedule, system_energy_j, window)
            else:
                checked = self._check_task(obligation, task_evidence)
            certificate.obligations.append(checked)

        certificate.metadata["tasks"] = {
            name: {
                "wcet_s": evidence.wcet_s,
                "energy_j": evidence.energy_j,
                "security": evidence.security_level,
            }
            for name, evidence in task_evidence.items()
        }
        if schedule is not None:
            certificate.metadata["makespan_s"] = schedule.makespan_s
            certificate.metadata["scheduler"] = schedule.scheduler
        return certificate

    # -- task-level obligations ------------------------------------------------------
    @staticmethod
    def _check_task(obligation: Obligation,
                    task_evidence: Dict[str, TaskEvidence]) -> CheckedObligation:
        evidence = task_evidence.get(obligation.subject)
        value: Optional[float] = None
        derivation: List[str] = []
        if evidence is not None:
            if obligation.property == PROPERTY_TIME:
                value = evidence.wcet_s
                derivation.append(
                    f"WCET({obligation.subject}) = {value} s by static analysis")
            elif obligation.property == PROPERTY_ENERGY:
                value = evidence.energy_j
                derivation.append(
                    f"WCEC({obligation.subject}) = {value} J by static analysis")
            elif obligation.property == PROPERTY_SECURITY:
                value = evidence.security_level
                derivation.append(
                    f"security({obligation.subject}) = {value} by the "
                    f"indiscernibility analysis")
        if value is None:
            derivation.append("no evidence available for this obligation")
            return CheckedObligation(obligation, None, False, derivation)
        return CheckedObligation(obligation, value,
                                 obligation.holds_for(value), derivation)

    # -- system-level obligations -------------------------------------------------------
    def _check_system(self, obligation: Obligation, spec: ContractSpec,
                      task_evidence: Dict[str, TaskEvidence],
                      schedule: Optional[Schedule],
                      system_energy_j: Optional[float],
                      window: Optional[float]) -> CheckedObligation:
        derivation: List[str] = []
        value: Optional[float] = None

        if obligation.property == PROPERTY_TIME:
            if schedule is not None:
                value = schedule.makespan_s
                derivation.append(
                    f"makespan = max task finish time = {value} s "
                    f"({schedule.scheduler} schedule)")
            else:
                known = [(name, e.wcet_s) for name, e in task_evidence.items()
                         if e.wcet_s is not None]
                if known and len(known) == len(spec.tasks):
                    value = sum(v for _n, v in known)
                    derivation.append(
                        "no schedule provided: bound by the sum of task WCETs "
                        + " + ".join(f"WCET({n})" for n, _v in known))
        elif obligation.property == PROPERTY_ENERGY:
            if system_energy_j is not None:
                value = system_energy_j
                derivation.append("system energy supplied by the caller "
                                  "(e.g. measured profile)")
            elif schedule is not None:
                task_energy = schedule.task_energy_j
                idle = schedule.idle_energy_j(self.platform, window)
                value = task_energy + idle
                derivation.append(
                    "energy/period = " +
                    " + ".join(f"E({entry.task})" for entry in schedule.entries)
                    + f" + idle = {task_energy:.6g} J + {idle:.6g} J")
            else:
                known = [(name, e.energy_j) for name, e in task_evidence.items()
                         if e.energy_j is not None]
                if known and len(known) == len(spec.tasks):
                    value = sum(v for _n, v in known)
                    derivation.append(
                        "no schedule provided: bound by the sum of task "
                        "energies " + " + ".join(f"E({n})" for n, _v in known))
        elif obligation.property == PROPERTY_SECURITY:
            levels = [e.security_level for e in task_evidence.values()
                      if e.security_level is not None]
            if levels and len(levels) == len(spec.tasks):
                value = min(levels)
                derivation.append(
                    "system security = min over tasks of their security level")

        if value is None:
            derivation.append("no evidence available for this obligation")
            return CheckedObligation(obligation, None, False, derivation)
        return CheckedObligation(obligation, value,
                                 obligation.holds_for(value), derivation)
