"""Contract obligations.

An :class:`Obligation` is a single provable statement extracted from the CSL
contract — "the WCET of task *compress* is at most 10 ms", "the energy of the
whole application per period is at most 40 mJ", "the security level of task
*encrypt* is at least 0.8".  A :class:`CheckedObligation` pairs an obligation
with the evidence used to discharge (or refute) it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

PROPERTY_TIME = "time"
PROPERTY_ENERGY = "energy"
PROPERTY_SECURITY = "security"

RELATION_AT_MOST = "<="
RELATION_AT_LEAST = ">="

_UNITS = {PROPERTY_TIME: "s", PROPERTY_ENERGY: "J", PROPERTY_SECURITY: ""}


@dataclass(frozen=True)
class Obligation:
    """One statement to prove about a task or the whole system."""

    subject: str              # task name, or "system"
    property: str             # PROPERTY_TIME / PROPERTY_ENERGY / PROPERTY_SECURITY
    relation: str             # RELATION_AT_MOST / RELATION_AT_LEAST
    bound: float              # SI value (seconds, joules) or a level in [0, 1]
    description: str = ""

    def holds_for(self, value: float) -> bool:
        if self.relation == RELATION_AT_MOST:
            return value <= self.bound + 1e-15
        if self.relation == RELATION_AT_LEAST:
            return value >= self.bound - 1e-15
        raise ValueError(f"unknown relation {self.relation!r}")

    def render(self) -> str:
        unit = _UNITS.get(self.property, "")
        return (f"{self.property}({self.subject}) {self.relation} "
                f"{self.bound:g}{unit}")


@dataclass
class CheckedObligation:
    """An obligation together with the evidence that discharges it."""

    obligation: Obligation
    value: Optional[float]
    satisfied: bool
    derivation: List[str] = field(default_factory=list)

    @property
    def margin(self) -> Optional[float]:
        """How far the value is from the bound (positive = comfortable)."""
        if self.value is None:
            return None
        if self.obligation.relation == RELATION_AT_MOST:
            return self.obligation.bound - self.value
        return self.value - self.obligation.bound

    def render(self) -> str:
        status = "PROVEN" if self.satisfied else "VIOLATED"
        value = "unknown" if self.value is None else f"{self.value:g}"
        return f"[{status}] {self.obligation.render()}  (analysed: {value})"
