"""Certificates: the output artefact of the contract system."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.contracts.obligations import CheckedObligation


@dataclass
class Certificate:
    """The proof artefact produced when a contract is checked.

    A certificate is *valid* only when every obligation was discharged.  Its
    JSON form is what the toolchain would hand to a certification authority;
    the derivation strings record how system-level facts were composed from
    task-level analysis results.
    """

    application: str
    platform: str
    obligations: List[CheckedObligation] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- status ------------------------------------------------------------------
    @property
    def valid(self) -> bool:
        return bool(self.obligations) and all(o.satisfied for o in self.obligations)

    @property
    def violated(self) -> List[CheckedObligation]:
        return [o for o in self.obligations if not o.satisfied]

    def obligation_for(self, subject: str, property_name: str
                       ) -> Optional[CheckedObligation]:
        for checked in self.obligations:
            if (checked.obligation.subject == subject
                    and checked.obligation.property == property_name):
                return checked
        return None

    # -- reporting ------------------------------------------------------------------
    def summary_lines(self) -> List[str]:
        header = (f"Certificate for {self.application!r} on {self.platform!r}: "
                  f"{'VALID' if self.valid else 'INVALID'}")
        return [header] + ["  " + checked.render() for checked in self.obligations]

    def to_dict(self) -> Dict[str, object]:
        return {
            "application": self.application,
            "platform": self.platform,
            "valid": self.valid,
            "metadata": self.metadata,
            "obligations": [
                {
                    "subject": checked.obligation.subject,
                    "property": checked.obligation.property,
                    "relation": checked.obligation.relation,
                    "bound": checked.obligation.bound,
                    "value": checked.value,
                    "satisfied": checked.satisfied,
                    "derivation": checked.derivation,
                }
                for checked in self.obligations
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
