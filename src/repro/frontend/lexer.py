"""Lexer for TeamPlay-C.

Produces a flat list of :class:`Token` objects.  ``#pragma teamplay`` lines
are emitted as single ``PRAGMA`` tokens whose value is the directive text, so
the parser can attach them to the following function or loop.

ASCII sources (all of them, in practice) take a master-regex fast path —
roughly an order of magnitude quicker than the character loop, which is kept
as the fallback for non-ASCII input (``str.isalpha``/``isdigit`` are
Unicode-aware, and the fallback preserves that behaviour exactly).
"""

from __future__ import annotations

import re
from typing import List, NamedTuple

from repro.errors import FrontendError

KEYWORDS = {"int", "void", "if", "else", "while", "for", "return"}

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
]
_SINGLE_OPS = set("+-*/%<>=!&|^~(){}[];,")


class Token(NamedTuple):
    """A lexical token with its source position.

    A ``NamedTuple`` rather than a frozen dataclass: token construction is
    the lexer's hot loop, and the tuple constructor is several times faster
    than per-field ``object.__setattr__``.
    """

    kind: str      # 'ID', 'NUM', 'KEYWORD', 'OP', 'PRAGMA', 'EOF'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


#: Master token pattern for the ASCII fast path.  Alternation order matters:
#: comments before operators (``//``, ``/*`` vs ``/``), the terminated block
#: comment before the unterminated-opener error case, hex before decimal.
_TOKEN_RE = re.compile(
    r"""
      (?P<NL>\n)
     |(?P<WS>[ \t\r]+)
     |(?P<LC>//[^\n]*)
     |(?P<BC>/\*(?:[^*]|\*(?!/))*\*/)
     |(?P<BCOPEN>/\*)
     |(?P<PRAGMA>\#[^\n]*)
     |(?P<NUM>0[xX][0-9a-fA-F]*|[0-9]+)
     |(?P<ID>[A-Za-z_][A-Za-z0-9_]*)
     |(?P<OP><<=|>>=|==|!=|<=|>=|&&|\|\||<<|>>|\+=|-=|\*=|/=|%=|&=|\|=|\^=
            |[+\-*/%<>=!&|^~(){}\[\];,])
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> List[Token]:
    """Tokenise TeamPlay-C ``source``; raises :class:`FrontendError` on bad input."""
    if source.isascii():
        return _tokenize_ascii(source)
    return _tokenize_chars(source)


def _tokenize_ascii(source: str) -> List[Token]:
    """Regex fast path; token-for-token identical to the character loop."""
    tokens: List[Token] = []
    append = tokens.append
    match = _TOKEN_RE.match
    line = 1
    column = 1
    pos = 0
    length = len(source)
    while pos < length:
        token = match(source, pos)
        if token is None:
            raise FrontendError(f"unexpected character {source[pos]!r}",
                                line, column)
        kind = token.lastgroup
        text = token.group()
        if kind == "ID":
            append(Token("KEYWORD" if text in KEYWORDS else "ID",
                         text, line, column))
            column += len(text)
        elif kind == "OP" or kind == "NUM":
            append(Token(kind, text, line, column))
            column += len(text)
        elif kind == "WS":
            column += len(text)
        elif kind == "NL":
            line += 1
            column = 1
        elif kind == "LC":
            pass  # column untouched; the next token is the newline (or EOF)
        elif kind == "BC":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                column = len(text) - text.rfind("\n")
            else:
                column += len(text)
        elif kind == "BCOPEN":
            raise FrontendError("unterminated block comment", line, column)
        else:  # PRAGMA
            stripped = text.strip()
            if not stripped.startswith("#pragma"):
                raise FrontendError(
                    f"unsupported preprocessor directive {stripped!r}",
                    line, column)
            directive = stripped[len("#pragma"):].strip()
            append(Token("PRAGMA", directive, line, column))
            # column deliberately untouched, as in the character loop: the
            # next token is the trailing newline, which resets it anyway.
        pos = token.end()
    append(Token("EOF", "", line, column))
    return tokens


def _tokenize_chars(source: str) -> List[Token]:
    """Character-by-character fallback (Unicode identifiers and digits)."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def error(message: str) -> FrontendError:
        return FrontendError(message, line, column)

    while i < length:
        ch = source[i]

        # -- whitespace ------------------------------------------------------
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue

        # -- comments --------------------------------------------------------
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue

        # -- pragmas ----------------------------------------------------------
        if ch == "#":
            end = source.find("\n", i)
            if end < 0:
                end = length
            text = source[i:end].strip()
            if text.startswith("#pragma"):
                directive = text[len("#pragma"):].strip()
                tokens.append(Token("PRAGMA", directive, line, column))
            else:
                raise error(f"unsupported preprocessor directive {text!r}")
            i = end
            continue

        # -- numbers ----------------------------------------------------------
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < length and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < length and source[i].isdigit():
                    i += 1
            text = source[start:i]
            tokens.append(Token("NUM", text, line, column))
            column += i - start
            continue

        # -- identifiers / keywords --------------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "KEYWORD" if text in KEYWORDS else "ID"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue

        # -- operators ----------------------------------------------------------
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, line, column))
                i += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token("OP", ch, line, column))
            i += 1
            column += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("EOF", "", line, column))
    return tokens
