"""Lexer for TeamPlay-C.

Two views of the same token stream come out of this module:

* :func:`tokenize` — the compatibility view: a flat list of
  :class:`Token` named tuples with exact line *and* column positions,
  pinned token-for-token by ``tests/test_frontend_scanner.py``.  It is
  produced by the single-compiled-regex scanner of the unified-pipeline PR
  (``_tokenize_ascii``), with the seed's character loop retained as the
  Unicode fallback (``_tokenize_chars``).
* :func:`scan` — the parser's fast path: a :class:`TokenStream` of three
  parallel arrays (interned integer *kind ids*, value strings, line
  numbers) with **no token objects at all**.  The cursor parser drives
  integer comparisons against these arrays; columns are recovered lazily
  (only error paths need them) by materialising the compatibility stream.

The fast path is built on ``re.findall`` rather than the scanner protocol:
one C-level pass yields every token text (newline runs are matched
explicitly so line tracking is a single integer add, and a trailing ``\\S``
alternative guarantees no character is skipped silently), and one Python
loop classifies the texts through a single dict whose keys are every
operator and keyword.  Texts the dict does not know (identifiers, numbers)
are classified once by first character and *memoised into a scan-local
copy of the dict*, so a variable name seen twice is a dict hit the second
time.  Anything unusual — non-ASCII input, an unexpected character, an
unterminated comment, a non-``#pragma`` directive — falls back to
:func:`tokenize`, which either raises with an exact line/column or yields
the token list the stream is then (slowly, correctly) built from.

``#pragma teamplay`` lines are emitted as single ``PRAGMA`` tokens whose
value is the directive text, so the parser can attach them to the
following function or loop.

Both views produce identical kinds/values/line numbers for every input
(cross-checked by the scanner golden tests and the hypothesis property
tests); the ``Token.kind`` strings are module-level interned constants, so
identity comparison (``tok.kind is KIND_ID``) is valid everywhere.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.errors import FrontendError

#: Interned ``Token.kind`` strings.  Every token built in this module uses
#: these exact objects, so ``tok.kind is KIND_ID`` is a valid (and fast)
#: comparison anywhere a compatibility token travels.
KIND_ID = sys.intern("ID")
KIND_NUM = sys.intern("NUM")
KIND_KEYWORD = sys.intern("KEYWORD")
KIND_OP = sys.intern("OP")
KIND_PRAGMA = sys.intern("PRAGMA")
KIND_EOF = sys.intern("EOF")

KEYWORDS = {"int", "void", "if", "else", "while", "for", "return"}

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
]
_SINGLE_OPS = set("+-*/%<>=!&|^~(){}[];,")


class Token(NamedTuple):
    """A lexical token with its source position.

    A ``NamedTuple`` rather than a frozen dataclass: token construction is
    the lexer's hot loop, and the tuple constructor is several times faster
    than per-field ``object.__setattr__``.  ``kind`` is always one of the
    module-level interned constants (:data:`KIND_ID` … :data:`KIND_EOF`),
    so identity comparison on it is valid.
    """

    kind: str      # KIND_ID, KIND_NUM, KIND_KEYWORD, KIND_OP, KIND_PRAGMA, KIND_EOF
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


# ---------------------------------------------------------------------------
# Interned integer kind ids (the token-cursor fast path)
# ---------------------------------------------------------------------------
#: Fine-grained kind ids: the classes the parser dispatches on by value
#: (identifier, number, pragma) get one id each; every keyword and every
#: operator gets its *own* id, so ``check``/``accept``/``expect`` in the
#: cursor parser are single integer comparisons with no string compare.
K_EOF = 0
K_ID = 1
K_NUM = 2
K_PRAGMA = 3

#: Keyword name -> kind id (ids 4..10).
KEYWORD_IDS: Dict[str, int] = {
    keyword: 4 + index for index, keyword in enumerate(sorted(KEYWORDS))
}

#: Operator text -> kind id (ids from 11 upward, multi-char first).
OP_IDS: Dict[str, int] = {
    op: 11 + index
    for index, op in enumerate(_MULTI_OPS + sorted(_SINGLE_OPS))
}

_N_KINDS = 11 + len(OP_IDS)

#: kind id -> coarse ``Token.kind`` string (the compatibility view).
KIND_NAMES: Tuple[str, ...] = tuple(
    [KIND_EOF, KIND_ID, KIND_NUM, KIND_PRAGMA]
    + [KIND_KEYWORD] * len(KEYWORD_IDS)
    + [KIND_OP] * len(OP_IDS)
)

#: kind id -> fixed token text for keyword/operator ids (None otherwise).
KIND_TEXTS: List[Optional[str]] = [None] * _N_KINDS
for _text, _kid in KEYWORD_IDS.items():
    KIND_TEXTS[_kid] = sys.intern(_text)
for _text, _kid in OP_IDS.items():
    KIND_TEXTS[_kid] = sys.intern(_text)
KIND_TEXTS = list(KIND_TEXTS)

#: The classification dict of the fast scan loop: every fixed token text to
#: its kind id.  Identifier/number texts are classified by first character
#: and memoised into a scan-local copy.
_KIND_IDS: Dict[str, int] = {}
_KIND_IDS.update(KEYWORD_IDS)
_KIND_IDS.update(OP_IDS)

#: Coarse name -> representative id for stream construction from Token
#: lists (keywords and operators resolve through their text instead).
_COARSE_IDS = {KIND_EOF: K_EOF, KIND_ID: K_ID, KIND_NUM: K_NUM,
               KIND_PRAGMA: K_PRAGMA}


class TokenStream:
    """The indexed token cursor: three parallel arrays plus the source.

    ``kinds[i]``/``values[i]``/``lines[i]`` describe token ``i``; the last
    token is always ``K_EOF``.  Columns are not tracked — the only
    consumers are error messages, and :meth:`token` materialises the exact
    compatibility token (line *and* column) on demand by re-running
    :func:`tokenize`, which is cheap on the cold error path and free
    otherwise.
    """

    __slots__ = ("kinds", "values", "lines", "source", "_tokens")

    def __init__(self, kinds: List[int], values: List[str],
                 lines: List[int], source: str,
                 tokens: Optional[List[Token]] = None):
        self.kinds = kinds
        self.values = values
        self.lines = lines
        self.source = source
        self._tokens = tokens

    def __len__(self) -> int:
        return len(self.kinds)

    def token(self, index: int) -> Token:
        """The exact compatibility token at ``index`` (lazy, error paths)."""
        if self._tokens is None:
            self._tokens = tokenize(self.source)
        return self._tokens[index]


def scan(source: str) -> TokenStream:
    """Scan ``source`` into a :class:`TokenStream` (the parser fast path).

    Raises :class:`FrontendError` on bad input with the same message and
    position :func:`tokenize` reports (anomalies are re-scanned through the
    compatibility path, which owns error reporting).
    """
    if source.isascii():
        try:
            return _scan_ascii(source)
        except _ScanFallback:
            pass
    # Non-ASCII input or an anomaly the fast loop does not classify:
    # tokenize() either raises the exact error or yields the token list
    # the stream is built from.
    tokens = tokenize(source)
    return _stream_from_tokens(tokens, source)


class _ScanFallback(Exception):
    """Internal: the fast scan met something the slow path must re-judge."""


#: Master pattern of the fast scan.  Alternation order is by token
#: frequency under two correctness constraints: the ``/``-leading comment
#: alternatives must precede ``/=?`` (so ``//`` and ``/*`` win over the
#: operator, and the terminated block comment over the unterminated
#: opener), and hex must precede decimal.  Operators are factored by
#: leading character (``<<=?|<=?`` instead of a flat longest-first list)
#: because CPython tries alternatives sequentially — this caps the
#: alternation walk per punctuation token at a handful of first-character
#: misses while preserving maximal munch.  Newline runs are explicit
#: tokens (line tracking); the final ``\S`` catches any character no other
#: alternative covers, so nothing is silently skipped (plain
#: spaces/tabs/carriage returns are the only non-matching gaps).
_SCAN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"
    r"|[;,(){}\[\]]"
    r"|0[xX][0-9a-fA-F]*|[0-9]+"
    r"|\n+"
    r"|==?|\+=?|<<=?|<=?|-=?|\*=?"
    r"|//[^\n]*|/\*(?:[^*]|\*(?!/))*\*/|/\*|/=?"
    r"|>>=?|>=?|&&|&=?|\|\||\|=?|\^=?|!=?|%=?|~"
    r"|#[^\n]*"
    r"|\S"
)


def _scan_ascii(source: str) -> TokenStream:
    """One ``findall`` pass plus one classification loop over its texts.

    The classification dict maps newline runs to *negative* ids (memoised
    like identifiers), so the hot loop is a single dict probe and sign
    check per text.  Line numbers are recorded as run-length breaks —
    ``(token_count_so_far, line_after)`` pairs, one per newline run — and
    expanded into the per-token array afterwards with C-level
    ``list.extend``, saving one append per token.
    """
    kinds: List[int] = []
    values: List[str] = []
    append_kind = kinds.append
    append_value = values.append
    # Scan-local copy: first-character classifications are memoised here,
    # so repeated identifiers/numbers/newline-runs are dict hits after the
    # first time.
    known = dict(_KIND_IDS)
    get = known.get
    line = 1
    breaks: List[Tuple[int, int]] = []
    append_break = breaks.append
    for text in _SCAN_RE.findall(source):
        kind = get(text)
        if kind is not None:
            if kind >= 0:
                append_kind(kind)
                append_value(text)
            else:  # a memoised newline run of -kind newlines
                line -= kind
                append_break((len(kinds), line))
            continue
        first = text[0]
        if "a" <= first <= "z" or "A" <= first <= "Z" or first == "_":
            known[text] = K_ID
            append_kind(K_ID)
            append_value(text)
        elif first == "\n":
            known[text] = -len(text)
            line += len(text)
            append_break((len(kinds), line))
        elif "0" <= first <= "9":
            known[text] = K_NUM
            append_kind(K_NUM)
            append_value(text)
        elif first == "/":
            # A dict miss starting with "/" is a comment ("/" and "/=" are
            # operators and hit the dict): "//…" is skipped outright, a
            # terminated block comment only advances the line counter, and
            # a bare "/*" is the unterminated opener.
            if text[1] == "*":
                if len(text) == 2:
                    raise _ScanFallback  # unterminated block comment
                newlines = text.count("\n")
                if newlines:
                    line += newlines
                    append_break((len(kinds), line))
        elif first == "#":
            stripped = text.strip()
            if not stripped.startswith("#pragma"):
                raise _ScanFallback  # unsupported preprocessor directive
            append_kind(K_PRAGMA)
            append_value(stripped[len("#pragma"):].strip())
        else:
            raise _ScanFallback  # unexpected character
    append_kind(K_EOF)
    append_value("")
    lines: List[int] = []
    extend_lines = lines.extend
    previous = 0
    current = 1
    for index, next_line in breaks:
        extend_lines([current] * (index - previous))
        previous = index
        current = next_line
    extend_lines([current] * (len(kinds) - previous))
    return TokenStream(kinds, values, lines, source)


def _stream_from_tokens(tokens: List[Token], source: str) -> TokenStream:
    """Build a stream from a compatibility token list (slow, exact)."""
    kinds: List[int] = []
    values: List[str] = []
    lines: List[int] = []
    for token in tokens:
        kind = token.kind
        if kind is KIND_KEYWORD:
            kinds.append(KEYWORD_IDS[token.value])
        elif kind is KIND_OP:
            kinds.append(OP_IDS[token.value])
        else:
            kinds.append(_COARSE_IDS[kind])
        values.append(token.value)
        lines.append(token.line)
    return TokenStream(kinds, values, lines, source, tokens)


# ---------------------------------------------------------------------------
# The compatibility scanner (Token objects with exact line/column)
# ---------------------------------------------------------------------------
#: Master token pattern of the ASCII scanner.  Alternation order matters
#: twice over: for correctness (keywords before identifiers, comments before
#: operators so ``//`` and ``/*`` win over ``/``, the terminated block
#: comment before the unterminated-opener error case, hex before decimal)
#: and for speed (alternatives are tried in order, so the most frequent
#: classes come first).
_TOKEN_RE = re.compile(
    r"""
      (?P<SKIP>[ \t\r\n]+)
     |(?P<KW>(?:%s)\b)
     |(?P<ID>[A-Za-z_][A-Za-z0-9_]*)
     |(?P<NUM>0[xX][0-9a-fA-F]*|[0-9]+)
     |(?P<LC>//[^\n]*)
     |(?P<BC>/\*(?:[^*]|\*(?!/))*\*/)
     |(?P<BCOPEN>/\*)
     |(?P<OP><<=|>>=|==|!=|<=|>=|&&|\|\||<<|>>|\+=|-=|\*=|/=|%%=|&=|\|=|\^=
            |[+\-*/%%<>=!&|^~(){}\[\];,])
     |(?P<PRAGMA>\#[^\n]*)
    """ % "|".join(sorted(KEYWORDS)),
    re.VERBOSE,
)

#: Group-number constants for the ``lastindex`` dispatch; resolved from the
#: compiled pattern so reordering the alternation cannot desynchronise them.
_SKIP = _TOKEN_RE.groupindex["SKIP"]
_KW = _TOKEN_RE.groupindex["KW"]
_ID = _TOKEN_RE.groupindex["ID"]
_NUM = _TOKEN_RE.groupindex["NUM"]
_LC = _TOKEN_RE.groupindex["LC"]
_BC = _TOKEN_RE.groupindex["BC"]
_BCOPEN = _TOKEN_RE.groupindex["BCOPEN"]
_OP = _TOKEN_RE.groupindex["OP"]
_PRAGMA = _TOKEN_RE.groupindex["PRAGMA"]

_tuple_new = tuple.__new__


def tokenize(source: str) -> List[Token]:
    """Tokenise TeamPlay-C ``source``; raises :class:`FrontendError` on bad input."""
    if source.isascii():
        return _tokenize_ascii(source)
    return _tokenize_chars(source)


def _tokenize_ascii(source: str) -> List[Token]:
    """Single-regex scanner; token-for-token identical to the character loop."""
    tokens: List[Token] = []
    append = tokens.append
    scan = _TOKEN_RE.scanner(source).match
    line = 1
    column = 1
    pos = 0
    length = len(source)
    match = scan()
    while match is not None:
        index = match.lastindex
        end = match.end()
        if index == _ID:
            append(_tuple_new(Token, (KIND_ID, match.group(), line, column)))
            column += end - pos
        elif index == _OP:
            append(_tuple_new(Token, (KIND_OP, match.group(), line, column)))
            column += end - pos
        elif index == _SKIP:
            text = match.group()
            newlines = text.count("\n")
            if newlines:
                line += newlines
                column = end - pos - text.rfind("\n")
            else:
                column += end - pos
        elif index == _KW:
            append(_tuple_new(Token, (KIND_KEYWORD, match.group(), line, column)))
            column += end - pos
        elif index == _NUM:
            append(_tuple_new(Token, (KIND_NUM, match.group(), line, column)))
            column += end - pos
        elif index == _LC:
            pass  # column untouched; the next token is the newline (or EOF)
        elif index == _BC:
            text = match.group()
            newlines = text.count("\n")
            if newlines:
                line += newlines
                column = end - pos - text.rfind("\n")
            else:
                column += end - pos
        elif index == _BCOPEN:
            raise FrontendError("unterminated block comment", line, column)
        else:  # PRAGMA
            stripped = match.group().strip()
            if not stripped.startswith("#pragma"):
                raise FrontendError(
                    f"unsupported preprocessor directive {stripped!r}",
                    line, column)
            directive = stripped[len("#pragma"):].strip()
            append(_tuple_new(Token, (KIND_PRAGMA, directive, line, column)))
            # column deliberately untouched, as in the character loop: the
            # next token is the trailing newline, which resets it anyway.
        pos = end
        match = scan()
    if pos < length:
        raise FrontendError(f"unexpected character {source[pos]!r}",
                            line, column)
    append(_tuple_new(Token, (KIND_EOF, "", line, column)))
    return tokens


def _tokenize_chars(source: str) -> List[Token]:
    """Character-by-character fallback (Unicode identifiers and digits)."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def error(message: str) -> FrontendError:
        return FrontendError(message, line, column)

    while i < length:
        ch = source[i]

        # -- whitespace ------------------------------------------------------
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue

        # -- comments --------------------------------------------------------
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue

        # -- pragmas ----------------------------------------------------------
        if ch == "#":
            end = source.find("\n", i)
            if end < 0:
                end = length
            text = source[i:end].strip()
            if text.startswith("#pragma"):
                directive = text[len("#pragma"):].strip()
                tokens.append(Token(KIND_PRAGMA, directive, line, column))
            else:
                raise error(f"unsupported preprocessor directive {text!r}")
            i = end
            continue

        # -- numbers ----------------------------------------------------------
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < length and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < length and source[i].isdigit():
                    i += 1
            text = source[start:i]
            tokens.append(Token(KIND_NUM, text, line, column))
            column += i - start
            continue

        # -- identifiers / keywords --------------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = KIND_KEYWORD if text in KEYWORDS else KIND_ID
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue

        # -- operators ----------------------------------------------------------
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token(KIND_OP, op, line, column))
                i += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(KIND_OP, ch, line, column))
            i += 1
            column += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(KIND_EOF, "", line, column))
    return tokens
