"""Lexer for TeamPlay-C.

Produces a flat list of :class:`Token` objects.  ``#pragma teamplay`` lines
are emitted as single ``PRAGMA`` tokens whose value is the directive text, so
the parser can attach them to the following function or loop.

ASCII sources (all of them, in practice) take a single-compiled-regex
scanner: one master pattern whose alternatives cover every token class,
driven through ``re``'s scanner protocol so the matcher itself keeps the
position.  The scanner is the compile path's cold-start hot spot — every
byte of every source flows through here before anything is cached — so the
loop is written for speed:

* whitespace and newlines collapse into one ``SKIP`` alternative, halving
  the match count of typical sources (every line break used to cost two
  dispatches: one newline, one indentation run),
* keywords are discriminated inside the pattern (``KW`` vs ``ID``) instead
  of a per-identifier set lookup,
* dispatch is on ``match.lastindex`` (an int compare) rather than
  ``lastgroup`` (a dict lookup on the pattern object), with branches ordered
  by token frequency,
* tokens are built with ``tuple.__new__`` — :class:`Token` adds no behaviour
  over its tuple layout, and skipping the generated ``__new__`` saves a
  Python-level call per token.

The character-by-character loop — the seed implementation — is kept as the
fallback for non-ASCII input (``str.isalpha``/``isdigit`` are Unicode-aware,
and the fallback preserves that behaviour exactly).  Both paths produce
token-for-token identical streams, including error messages and line/column
positions; ``tests/test_frontend_scanner.py`` pins the stream golden.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple

from repro.errors import FrontendError

KEYWORDS = {"int", "void", "if", "else", "while", "for", "return"}

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
]
_SINGLE_OPS = set("+-*/%<>=!&|^~(){}[];,")


class Token(NamedTuple):
    """A lexical token with its source position.

    A ``NamedTuple`` rather than a frozen dataclass: token construction is
    the lexer's hot loop, and the tuple constructor is several times faster
    than per-field ``object.__setattr__``.
    """

    kind: str      # 'ID', 'NUM', 'KEYWORD', 'OP', 'PRAGMA', 'EOF'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


#: Master token pattern of the ASCII scanner.  Alternation order matters
#: twice over: for correctness (keywords before identifiers, comments before
#: operators so ``//`` and ``/*`` win over ``/``, the terminated block
#: comment before the unterminated-opener error case, hex before decimal)
#: and for speed (alternatives are tried in order, so the most frequent
#: classes come first).
_TOKEN_RE = re.compile(
    r"""
      (?P<SKIP>[ \t\r\n]+)
     |(?P<KW>(?:%s)\b)
     |(?P<ID>[A-Za-z_][A-Za-z0-9_]*)
     |(?P<NUM>0[xX][0-9a-fA-F]*|[0-9]+)
     |(?P<LC>//[^\n]*)
     |(?P<BC>/\*(?:[^*]|\*(?!/))*\*/)
     |(?P<BCOPEN>/\*)
     |(?P<OP><<=|>>=|==|!=|<=|>=|&&|\|\||<<|>>|\+=|-=|\*=|/=|%%=|&=|\|=|\^=
            |[+\-*/%%<>=!&|^~(){}\[\];,])
     |(?P<PRAGMA>\#[^\n]*)
    """ % "|".join(sorted(KEYWORDS)),
    re.VERBOSE,
)

#: Group-number constants for the ``lastindex`` dispatch; resolved from the
#: compiled pattern so reordering the alternation cannot desynchronise them.
_SKIP = _TOKEN_RE.groupindex["SKIP"]
_KW = _TOKEN_RE.groupindex["KW"]
_ID = _TOKEN_RE.groupindex["ID"]
_NUM = _TOKEN_RE.groupindex["NUM"]
_LC = _TOKEN_RE.groupindex["LC"]
_BC = _TOKEN_RE.groupindex["BC"]
_BCOPEN = _TOKEN_RE.groupindex["BCOPEN"]
_OP = _TOKEN_RE.groupindex["OP"]
_PRAGMA = _TOKEN_RE.groupindex["PRAGMA"]

_tuple_new = tuple.__new__


def tokenize(source: str) -> List[Token]:
    """Tokenise TeamPlay-C ``source``; raises :class:`FrontendError` on bad input."""
    if source.isascii():
        return _tokenize_ascii(source)
    return _tokenize_chars(source)


def _tokenize_ascii(source: str) -> List[Token]:
    """Single-regex scanner; token-for-token identical to the character loop."""
    tokens: List[Token] = []
    append = tokens.append
    scan = _TOKEN_RE.scanner(source).match
    line = 1
    column = 1
    pos = 0
    length = len(source)
    match = scan()
    while match is not None:
        index = match.lastindex
        end = match.end()
        if index == _ID:
            append(_tuple_new(Token, ("ID", match.group(), line, column)))
            column += end - pos
        elif index == _OP:
            append(_tuple_new(Token, ("OP", match.group(), line, column)))
            column += end - pos
        elif index == _SKIP:
            text = match.group()
            newlines = text.count("\n")
            if newlines:
                line += newlines
                column = end - pos - text.rfind("\n")
            else:
                column += end - pos
        elif index == _KW:
            append(_tuple_new(Token, ("KEYWORD", match.group(), line, column)))
            column += end - pos
        elif index == _NUM:
            append(_tuple_new(Token, ("NUM", match.group(), line, column)))
            column += end - pos
        elif index == _LC:
            pass  # column untouched; the next token is the newline (or EOF)
        elif index == _BC:
            text = match.group()
            newlines = text.count("\n")
            if newlines:
                line += newlines
                column = end - pos - text.rfind("\n")
            else:
                column += end - pos
        elif index == _BCOPEN:
            raise FrontendError("unterminated block comment", line, column)
        else:  # PRAGMA
            stripped = match.group().strip()
            if not stripped.startswith("#pragma"):
                raise FrontendError(
                    f"unsupported preprocessor directive {stripped!r}",
                    line, column)
            directive = stripped[len("#pragma"):].strip()
            append(_tuple_new(Token, ("PRAGMA", directive, line, column)))
            # column deliberately untouched, as in the character loop: the
            # next token is the trailing newline, which resets it anyway.
        pos = end
        match = scan()
    if pos < length:
        raise FrontendError(f"unexpected character {source[pos]!r}",
                            line, column)
    append(_tuple_new(Token, ("EOF", "", line, column)))
    return tokens


def _tokenize_chars(source: str) -> List[Token]:
    """Character-by-character fallback (Unicode identifiers and digits)."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def error(message: str) -> FrontendError:
        return FrontendError(message, line, column)

    while i < length:
        ch = source[i]

        # -- whitespace ------------------------------------------------------
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue

        # -- comments --------------------------------------------------------
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue

        # -- pragmas ----------------------------------------------------------
        if ch == "#":
            end = source.find("\n", i)
            if end < 0:
                end = length
            text = source[i:end].strip()
            if text.startswith("#pragma"):
                directive = text[len("#pragma"):].strip()
                tokens.append(Token("PRAGMA", directive, line, column))
            else:
                raise error(f"unsupported preprocessor directive {text!r}")
            i = end
            continue

        # -- numbers ----------------------------------------------------------
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < length and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < length and source[i].isdigit():
                    i += 1
            text = source[start:i]
            tokens.append(Token("NUM", text, line, column))
            column += i - start
            continue

        # -- identifiers / keywords --------------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "KEYWORD" if text in KEYWORDS else "ID"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue

        # -- operators ----------------------------------------------------------
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, line, column))
                i += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token("OP", ch, line, column))
            i += 1
            column += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("EOF", "", line, column))
    return tokens
