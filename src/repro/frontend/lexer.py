"""Lexer for TeamPlay-C.

Produces a flat list of :class:`Token` objects.  ``#pragma teamplay`` lines
are emitted as single ``PRAGMA`` tokens whose value is the directive text, so
the parser can attach them to the following function or loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import FrontendError

KEYWORDS = {"int", "void", "if", "else", "while", "for", "return"}

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
]
_SINGLE_OPS = set("+-*/%<>=!&|^~(){}[];,")


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position."""

    kind: str      # 'ID', 'NUM', 'KEYWORD', 'OP', 'PRAGMA', 'EOF'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenise TeamPlay-C ``source``; raises :class:`FrontendError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def error(message: str) -> FrontendError:
        return FrontendError(message, line, column)

    while i < length:
        ch = source[i]

        # -- whitespace ------------------------------------------------------
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue

        # -- comments --------------------------------------------------------
        if source.startswith("//", i):
            while i < length and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue

        # -- pragmas ----------------------------------------------------------
        if ch == "#":
            end = source.find("\n", i)
            if end < 0:
                end = length
            text = source[i:end].strip()
            if text.startswith("#pragma"):
                directive = text[len("#pragma"):].strip()
                tokens.append(Token("PRAGMA", directive, line, column))
            else:
                raise error(f"unsupported preprocessor directive {text!r}")
            i = end
            continue

        # -- numbers ----------------------------------------------------------
        if ch.isdigit():
            start = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                i += 2
                while i < length and source[i] in "0123456789abcdefABCDEF":
                    i += 1
            else:
                while i < length and source[i].isdigit():
                    i += 1
            text = source[start:i]
            tokens.append(Token("NUM", text, line, column))
            column += i - start
            continue

        # -- identifiers / keywords --------------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "KEYWORD" if text in KEYWORDS else "ID"
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue

        # -- operators ----------------------------------------------------------
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token("OP", op, line, column))
                i += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token("OP", ch, line, column))
            i += 1
            column += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("EOF", "", line, column))
    return tokens
