"""Recursive-descent parser for TeamPlay-C over an indexed token cursor.

The parser runs on the :class:`~repro.frontend.lexer.TokenStream` fast path:
three parallel arrays (interned integer kind ids, value strings, line
numbers) and an integer cursor.  Every ``check``/``accept``/``expect`` the
old Token-object parser spent on string comparison and attribute access is
an integer comparison against module-level id constants; operator
precedence and assignment-operator membership are flat tuples indexed by
kind id; pragma headers parse through a process-wide memo
(:func:`~repro.frontend.pragmas.parse_pragma_cached`) so repeated
directives cost one dict hit.  Columns are not tracked in the hot path —
error reporting (the only consumer) materialises the exact compatibility
token on demand, and errors *at end of input* report the last real token's
position rather than the synthetic EOF token's.

The seed parser is retained verbatim as :class:`_ReferenceParser` (over
:func:`~repro.frontend.lexer.tokenize`'s Token list): the hypothesis
property tests cross-check both parsers for AST equality over generated
programs, and the frontend benchmarks use it as the honest "old call path"
baseline.

On top sits a process-wide parse cache (:class:`ParseCache`, same LRU +
``stats()`` convention as the engine caches) keyed by the source text's
fingerprint — the string's cached hash makes repeat lookups O(1) — plus
the pipeline's frontend-stage identity, so registering a custom frontend
pass widens the key automatically per the PR 4 contract.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import FrontendError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import (
    K_EOF,
    K_ID,
    K_NUM,
    K_PRAGMA,
    KEYWORD_IDS,
    KIND_NAMES,
    KIND_TEXTS,
    OP_IDS,
    Token,
    TokenStream,
    scan,
    tokenize,
)
from repro.frontend.pragmas import parse_pragma, parse_pragma_cached

#: Binary operator precedence, higher binds tighter.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# -- kind-id constants and dispatch tables ----------------------------------
_KW_INT = KEYWORD_IDS["int"]
_KW_VOID = KEYWORD_IDS["void"]
_KW_IF = KEYWORD_IDS["if"]
_KW_ELSE = KEYWORD_IDS["else"]
_KW_WHILE = KEYWORD_IDS["while"]
_KW_FOR = KEYWORD_IDS["for"]
_KW_RETURN = KEYWORD_IDS["return"]

_OP_LPAREN = OP_IDS["("]
_OP_RPAREN = OP_IDS[")"]
_OP_LBRACE = OP_IDS["{"]
_OP_RBRACE = OP_IDS["}"]
_OP_LBRACKET = OP_IDS["["]
_OP_RBRACKET = OP_IDS["]"]
_OP_SEMICOLON = OP_IDS[";"]
_OP_COMMA = OP_IDS[","]
_OP_ASSIGN = OP_IDS["="]
_OP_MINUS = OP_IDS["-"]
_OP_PLUS = OP_IDS["+"]
_OP_BANG = OP_IDS["!"]
_OP_TILDE = OP_IDS["~"]

_N_KINDS = len(KIND_NAMES)

#: kind id -> binary precedence (0 = not a binary operator).  Indexed in
#: the expression hot loop; ``min_precedence`` is always >= 1, so the
#: non-operator case needs no extra branch.
_PREC_BY_ID: Tuple[int, ...] = tuple(
    _PRECEDENCE.get(KIND_TEXTS[kid] or "", 0) for kid in range(_N_KINDS))

#: kind id -> is an assignment operator.
_IS_ASSIGN: Tuple[bool, ...] = tuple(
    (KIND_TEXTS[kid] or "") in _ASSIGN_OPS for kid in range(_N_KINDS))

#: Shared read-only empty pragma dict for statements with no pragmas.
_NO_PRAGMAS: Dict[str, object] = {}

#: Memo for numeric-literal conversion: real programs repeat a handful of
#: constants, and ``int(text, 0)`` (prefix handling) costs several times a
#: dict hit.  Failures (e.g. a bare ``"0x"``) are never cached, so the
#: ValueError propagates exactly as the seed parser's did.
_INT_CACHE: Dict[str, int] = {}


def _int_value(text: str) -> int:
    value = _INT_CACHE.get(text)
    if value is None:
        value = int(text, 0)
        if len(_INT_CACHE) >= 4096:
            _INT_CACHE.clear()
        _INT_CACHE[text] = value
    return value


class _Parser:
    """The token-cursor parser (see the module docstring)."""

    __slots__ = ("stream", "kinds", "values", "lines", "pos", "source_name")

    def __init__(self, stream: TokenStream, source_name: str):
        self.stream = stream
        self.kinds = stream.kinds
        self.values = stream.values
        self.lines = stream.lines
        self.pos = 0
        self.source_name = source_name

    # -- error helpers ------------------------------------------------------
    def _positioned(self, index: int, message: str) -> FrontendError:
        """An error at token ``index``, with exact line *and* column.

        End-of-input errors report the last real token's position — the
        synthetic EOF token sits one line past a trailing newline, which
        pointed users at an empty line.
        """
        if self.kinds[index] == K_EOF and index > 0:
            index -= 1
        token = self.stream.token(index)
        return FrontendError(message, token.line, token.column)

    def _fail_expect(self, kind_id: int):
        expected = KIND_TEXTS[kind_id] or KIND_NAMES[kind_id]
        pos = self.pos
        found = self.values[pos] or KIND_NAMES[self.kinds[pos]]
        raise self._positioned(
            pos, f"expected {expected!r} but found {found!r}")

    def error(self, message: str) -> FrontendError:
        return self._positioned(self.pos, message)

    # -- token helpers ------------------------------------------------------
    def _expect(self, kind_id: int) -> int:
        """Consume a token of ``kind_id`` and return its index."""
        pos = self.pos
        if self.kinds[pos] == kind_id:
            self.pos = pos + 1
            return pos
        self._fail_expect(kind_id)

    def _accept(self, kind_id: int) -> bool:
        if self.kinds[self.pos] == kind_id:
            self.pos += 1
            return True
        return False

    # -- module -------------------------------------------------------------
    def parse_module(self) -> ast.SourceModule:
        module = ast.SourceModule(source_name=self.source_name)
        functions = module.functions
        globals_ = module.globals
        kinds = self.kinds
        pending_pragmas: Dict[str, object] = {}
        while True:
            kind = kinds[self.pos]
            if kind == _KW_INT or kind == _KW_VOID:
                decl = self._parse_top_level(pending_pragmas)
                pending_pragmas = {}
                if decl.__class__ is ast.FunctionDef:
                    functions.append(decl)
                else:
                    globals_.append(decl)
            elif kind == K_PRAGMA:
                pos = self.pos
                pending_pragmas.update(
                    parse_pragma_cached(self.values[pos], self.lines[pos]))
                self.pos = pos + 1
            elif kind == K_EOF:
                break
            else:
                raise self.error("expected a declaration")
        return module

    def _parse_top_level(self, pragmas: Dict[str, object]):
        type_index = self.pos  # 'int' or 'void'
        self.pos = type_index + 1
        name_index = self._expect(K_ID)
        if self.kinds[self.pos] == _OP_LPAREN:
            return self._parse_function(name_index, pragmas)
        if self.kinds[type_index] == _KW_VOID:
            raise self._positioned(type_index,
                                   "global variables must have type int")
        return self._parse_global_array(name_index)

    def _parse_global_array(self, name_index: int) -> ast.GlobalArray:
        self._expect(_OP_LBRACKET)
        size_index = self._expect(K_NUM)
        self._expect(_OP_RBRACKET)
        size = int(self.values[size_index], 0)
        if size <= 0:
            raise self._positioned(size_index, "array size must be positive")
        init: Optional[List[int]] = None
        if self._accept(_OP_ASSIGN):
            self._expect(_OP_LBRACE)
            init = []
            while self.kinds[self.pos] != _OP_RBRACE:
                negative = self._accept(_OP_MINUS)
                value = int(self.values[self._expect(K_NUM)], 0)
                init.append(-value if negative else value)
                if not self._accept(_OP_COMMA):
                    break
            self._expect(_OP_RBRACE)
            if len(init) > size:
                name = self.values[name_index]
                raise self._positioned(
                    name_index,
                    f"initialiser for {name!r} has {len(init)} "
                    f"elements but the array holds {size}")
        self._expect(_OP_SEMICOLON)
        return ast.GlobalArray(self.values[name_index], size, init,
                               self.lines[name_index])

    def _parse_function(self, name_index: int,
                        pragmas: Dict[str, object]) -> ast.FunctionDef:
        self._expect(_OP_LPAREN)
        params: List[str] = []
        if self._accept(_KW_VOID):
            pass
        elif self.kinds[self.pos] != _OP_RPAREN:
            while True:
                self._expect(_KW_INT)
                params.append(self.values[self._expect(K_ID)])
                if not self._accept(_OP_COMMA):
                    break
        self._expect(_OP_RPAREN)
        self._expect(_OP_LBRACE)
        body = self._parse_statements_until_brace()
        return ast.FunctionDef(self.values[name_index], params, body,
                               dict(pragmas), self.lines[name_index])

    # -- statements ----------------------------------------------------------
    def _parse_statements_until_brace(self) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        append = stmts.append
        kinds = self.kinds
        while kinds[self.pos] != _OP_RBRACE:
            if kinds[self.pos] == K_EOF:
                raise self.error("unexpected end of file inside a block")
            append(self._parse_statement())
        self.pos += 1  # consume '}'
        return stmts

    def _parse_block(self) -> List[ast.Stmt]:
        if self._accept(_OP_LBRACE):
            return self._parse_statements_until_brace()
        return [self._parse_statement()]

    def _parse_statement(self) -> ast.Stmt:
        kinds = self.kinds
        kind = kinds[self.pos]
        if kind == K_PRAGMA:
            pragmas: Dict[str, object] = {}
            while kinds[self.pos] == K_PRAGMA:
                pos = self.pos
                pragmas.update(
                    parse_pragma_cached(self.values[pos], self.lines[pos]))
                self.pos = pos + 1
            kind = kinds[self.pos]
        else:
            pragmas = _NO_PRAGMAS

        if kind == _KW_INT:
            return self._parse_vardecl()
        if kind == _KW_IF:
            return self._parse_if()
        if kind == _KW_WHILE:
            return self._parse_while(pragmas)
        if kind == _KW_FOR:
            return self._parse_for(pragmas)
        if kind == _KW_RETURN:
            return self._parse_return()
        return self._parse_expression_statement()

    def _parse_vardecl(self) -> ast.VarDecl:
        self._expect(_KW_INT)
        name_index = self._expect(K_ID)
        if self._accept(_OP_LBRACKET):
            size_index = self._expect(K_NUM)
            self._expect(_OP_RBRACKET)
            self._expect(_OP_SEMICOLON)
            size = int(self.values[size_index], 0)
            if size <= 0:
                raise self._positioned(size_index,
                                       "array size must be positive")
            return ast.VarDecl(self.values[name_index], array_size=size,
                               line=self.lines[name_index])
        init = None
        if self._accept(_OP_ASSIGN):
            init = self._parse_expression()
        self._expect(_OP_SEMICOLON)
        return ast.VarDecl(self.values[name_index], init=init,
                           line=self.lines[name_index])

    def _parse_if(self) -> ast.If:
        line = self.lines[self._expect(_KW_IF)]
        self._expect(_OP_LPAREN)
        cond = self._parse_expression()
        self._expect(_OP_RPAREN)
        then_body = self._parse_block()
        else_body: List[ast.Stmt] = []
        if self._accept(_KW_ELSE):
            if self.kinds[self.pos] == _KW_IF:
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return ast.If(cond, then_body, else_body, line)

    def _parse_while(self, pragmas: Dict[str, object]) -> ast.While:
        line = self.lines[self._expect(_KW_WHILE)]
        self._expect(_OP_LPAREN)
        cond = self._parse_expression()
        self._expect(_OP_RPAREN)
        body = self._parse_block()
        return ast.While(cond, body, pragmas.get("loopbound"), line)

    def _parse_for(self, pragmas: Dict[str, object]) -> ast.For:
        line = self.lines[self._expect(_KW_FOR)]
        self._expect(_OP_LPAREN)
        init: Optional[ast.Stmt] = None
        if self.kinds[self.pos] != _OP_SEMICOLON:
            if self.kinds[self.pos] == _KW_INT:
                self.pos += 1
                name_index = self._expect(K_ID)
                self._expect(_OP_ASSIGN)
                init_expr = self._parse_expression()
                init = ast.VarDecl(self.values[name_index], init=init_expr,
                                   line=self.lines[name_index])
            else:
                init = self._parse_simple_assignment()
        self._expect(_OP_SEMICOLON)
        cond: Optional[ast.Expr] = None
        if self.kinds[self.pos] != _OP_SEMICOLON:
            cond = self._parse_expression()
        self._expect(_OP_SEMICOLON)
        update: Optional[ast.Stmt] = None
        if self.kinds[self.pos] != _OP_RPAREN:
            update = self._parse_simple_assignment()
        self._expect(_OP_RPAREN)
        body = self._parse_block()
        return ast.For(init, cond, update, body, pragmas.get("loopbound"),
                       line)

    def _parse_simple_assignment(self) -> ast.Stmt:
        expr = self._parse_expression()
        pos = self.pos
        kind = self.kinds[pos]
        if _IS_ASSIGN[kind]:
            self.pos = pos + 1
            value = self._parse_expression()
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise self._positioned(
                    pos, "assignment target must be a variable or "
                         "array element")
            return ast.Assign(expr, KIND_TEXTS[kind], value, self.lines[pos])
        return ast.ExprStmt(expr, self.lines[pos])

    def _parse_return(self) -> ast.Return:
        line = self.lines[self._expect(_KW_RETURN)]
        value = None
        if self.kinds[self.pos] != _OP_SEMICOLON:
            value = self._parse_expression()
        self._expect(_OP_SEMICOLON)
        return ast.Return(value, line)

    def _parse_expression_statement(self) -> ast.Stmt:
        stmt = self._parse_simple_assignment()
        self._expect(_OP_SEMICOLON)
        return stmt

    # -- expressions ---------------------------------------------------------
    def _parse_expression(self, min_precedence: int = 1) -> ast.Expr:
        # Iterative operator-precedence loop: the classic recursive
        # precedence climb costs a Python frame per binary operator; here a
        # pending-operator stack reduces whenever the incoming operator
        # binds no tighter than the stack top (all TeamPlay-C binary
        # operators are left-associative), producing the identical tree.
        # The single-operand case — the overwhelming majority — returns
        # after one table probe without touching the stacks.
        unary = self._parse_unary
        kinds = self.kinds
        precedence_of = _PREC_BY_ID
        lhs = unary()
        kind = kinds[self.pos]
        precedence = precedence_of[kind]
        if precedence < min_precedence:
            return lhs
        lines = self.lines
        pending: List[Tuple[int, int, int]] = []  # (precedence, kind, line)
        operands = [lhs]
        while True:
            while pending and pending[-1][0] >= precedence:
                _, top_kind, top_line = pending.pop()
                rhs = operands.pop()
                operands[-1] = ast.Binary(KIND_TEXTS[top_kind], operands[-1],
                                          rhs, top_line)
            pos = self.pos
            pending.append((precedence, kind, lines[pos]))
            self.pos = pos + 1
            operands.append(unary())
            kind = kinds[self.pos]
            precedence = precedence_of[kind]
            if precedence < min_precedence:
                break
        while pending:
            _, top_kind, top_line = pending.pop()
            rhs = operands.pop()
            operands[-1] = ast.Binary(KIND_TEXTS[top_kind], operands[-1],
                                      rhs, top_line)
        return operands[0]

    def _parse_unary(self) -> ast.Expr:
        # Primary parsing is merged in (one call level per operand saved);
        # the identifier/number cases lead because they dominate real
        # programs, and the trailing ``(``/``[`` checks are inlined rather
        # than routed through ``_accept``.
        pos = self.pos
        kinds = self.kinds
        kind = kinds[pos]
        if kind == K_ID:
            name = self.values[pos]
            line = self.lines[pos]
            pos += 1
            following = kinds[pos]
            if following == _OP_LPAREN:
                self.pos = pos + 1
                args: List[ast.Expr] = []
                if kinds[self.pos] != _OP_RPAREN:
                    while True:
                        args.append(self._parse_expression())
                        if kinds[self.pos] != _OP_COMMA:
                            break
                        self.pos += 1
                if kinds[self.pos] != _OP_RPAREN:
                    self._fail_expect(_OP_RPAREN)
                self.pos += 1
                return ast.Call(name, args, line)
            if following == _OP_LBRACKET:
                self.pos = pos + 1
                index = self._parse_expression()
                if kinds[self.pos] != _OP_RBRACKET:
                    self._fail_expect(_OP_RBRACKET)
                self.pos += 1
                return ast.Index(name, index, line)
            self.pos = pos
            return ast.Var(name, line)
        if kind == K_NUM:
            self.pos = pos + 1
            return ast.Num(_int_value(self.values[pos]), self.lines[pos])
        if kind == _OP_MINUS or kind == _OP_BANG or kind == _OP_TILDE:
            line = self.lines[pos]
            self.pos = pos + 1
            operand = self._parse_unary()
            if kind == _OP_MINUS and operand.__class__ is ast.Num:
                return ast.Num(-operand.value, line)
            return ast.Unary(KIND_TEXTS[kind], operand, line)
        if kind == _OP_LPAREN:
            self.pos = pos + 1
            expr = self._parse_expression()
            self._expect(_OP_RPAREN)
            return expr
        if kind == _OP_PLUS:
            self.pos = pos + 1
            return self._parse_unary()
        found = self.values[pos] or KIND_NAMES[kind]
        raise self.error(f"unexpected token {found!r} in expression")


# ---------------------------------------------------------------------------
# Reference parser (the seed implementation, retained verbatim)
# ---------------------------------------------------------------------------
class _ReferenceParser:
    """The seed Token-object parser, kept as the parity/benchmark baseline.

    The hypothesis property tests assert this parser and the cursor parser
    produce equal ASTs over generated TeamPlay-C programs, and the frontend
    benchmarks use it (after the seed character-loop lexer) as the honest
    "old call path".  The only change from the seed is dropping the
    redundant ``min()`` clamp in :meth:`peek` — ``advance`` never moves
    past the EOF sentinel, so the cursor cannot leave the token list.
    """

    def __init__(self, tokens: List[Token], source_name: str):
        self.tokens = tokens
        self.pos = 0
        self.source_name = source_name

    # -- token helpers ------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if self.check(kind, value):
            return self.advance()
        token = self.peek()
        expected = value if value is not None else kind
        raise FrontendError(
            f"expected {expected!r} but found {token.value or token.kind!r}",
            token.line, token.column)

    def error(self, message: str) -> FrontendError:
        token = self.peek()
        return FrontendError(message, token.line, token.column)

    # -- module -----------------------------------------------------------------
    def parse_module(self) -> ast.SourceModule:
        module = ast.SourceModule(source_name=self.source_name)
        pending_pragmas: Dict[str, object] = {}
        while not self.check("EOF"):
            if self.check("PRAGMA"):
                token = self.advance()
                pending_pragmas.update(parse_pragma(token.value, token.line))
                continue
            if self.check("KEYWORD", "int") or self.check("KEYWORD", "void"):
                decl = self._parse_top_level(pending_pragmas)
                pending_pragmas = {}
                if isinstance(decl, ast.FunctionDef):
                    module.functions.append(decl)
                else:
                    module.globals.append(decl)
                continue
            raise self.error("expected a declaration")
        return module

    def _parse_top_level(self, pragmas: Dict[str, object]):
        type_token = self.advance()  # 'int' or 'void'
        name_token = self.expect("ID")
        if self.check("OP", "("):
            return self._parse_function(type_token, name_token, pragmas)
        if type_token.value == "void":
            raise FrontendError("global variables must have type int",
                                type_token.line, type_token.column)
        return self._parse_global_array(name_token)

    def _parse_global_array(self, name_token: Token) -> ast.GlobalArray:
        self.expect("OP", "[")
        size_token = self.expect("NUM")
        self.expect("OP", "]")
        size = int(size_token.value, 0)
        if size <= 0:
            raise FrontendError("array size must be positive",
                                size_token.line, size_token.column)
        init: Optional[List[int]] = None
        if self.accept("OP", "="):
            self.expect("OP", "{")
            init = []
            while not self.check("OP", "}"):
                negative = bool(self.accept("OP", "-"))
                value_token = self.expect("NUM")
                value = int(value_token.value, 0)
                init.append(-value if negative else value)
                if not self.accept("OP", ","):
                    break
            self.expect("OP", "}")
            if len(init) > size:
                raise FrontendError(
                    f"initialiser for {name_token.value!r} has {len(init)} "
                    f"elements but the array holds {size}",
                    name_token.line, name_token.column)
        self.expect("OP", ";")
        return ast.GlobalArray(name_token.value, size, init, name_token.line)

    def _parse_function(self, type_token: Token, name_token: Token,
                        pragmas: Dict[str, object]) -> ast.FunctionDef:
        self.expect("OP", "(")
        params: List[str] = []
        if self.accept("KEYWORD", "void"):
            pass
        elif not self.check("OP", ")"):
            while True:
                self.expect("KEYWORD", "int")
                param = self.expect("ID")
                params.append(param.value)
                if not self.accept("OP", ","):
                    break
        self.expect("OP", ")")
        self.expect("OP", "{")
        body = self._parse_statements_until_brace()
        return ast.FunctionDef(name_token.value, params, body, dict(pragmas),
                               name_token.line)

    # -- statements ----------------------------------------------------------------
    def _parse_statements_until_brace(self) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        while not self.check("OP", "}"):
            if self.check("EOF"):
                raise self.error("unexpected end of file inside a block")
            stmts.append(self._parse_statement())
        self.expect("OP", "}")
        return stmts

    def _parse_block(self) -> List[ast.Stmt]:
        if self.accept("OP", "{"):
            return self._parse_statements_until_brace()
        return [self._parse_statement()]

    def _parse_statement(self) -> ast.Stmt:
        pragmas: Dict[str, object] = {}
        while self.check("PRAGMA"):
            token = self.advance()
            pragmas.update(parse_pragma(token.value, token.line))

        if self.check("KEYWORD", "int"):
            return self._parse_vardecl()
        if self.check("KEYWORD", "if"):
            return self._parse_if()
        if self.check("KEYWORD", "while"):
            return self._parse_while(pragmas)
        if self.check("KEYWORD", "for"):
            return self._parse_for(pragmas)
        if self.check("KEYWORD", "return"):
            return self._parse_return()
        return self._parse_expression_statement()

    def _parse_vardecl(self) -> ast.VarDecl:
        self.expect("KEYWORD", "int")
        name_token = self.expect("ID")
        if self.accept("OP", "["):
            size_token = self.expect("NUM")
            self.expect("OP", "]")
            self.expect("OP", ";")
            size = int(size_token.value, 0)
            if size <= 0:
                raise FrontendError("array size must be positive",
                                    size_token.line, size_token.column)
            return ast.VarDecl(name_token.value, array_size=size,
                               line=name_token.line)
        init = None
        if self.accept("OP", "="):
            init = self._parse_expression()
        self.expect("OP", ";")
        return ast.VarDecl(name_token.value, init=init, line=name_token.line)

    def _parse_if(self) -> ast.If:
        token = self.expect("KEYWORD", "if")
        self.expect("OP", "(")
        cond = self._parse_expression()
        self.expect("OP", ")")
        then_body = self._parse_block()
        else_body: List[ast.Stmt] = []
        if self.accept("KEYWORD", "else"):
            if self.check("KEYWORD", "if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return ast.If(cond, then_body, else_body, token.line)

    def _parse_while(self, pragmas: Dict[str, object]) -> ast.While:
        token = self.expect("KEYWORD", "while")
        self.expect("OP", "(")
        cond = self._parse_expression()
        self.expect("OP", ")")
        body = self._parse_block()
        bound = pragmas.get("loopbound")
        return ast.While(cond, body, bound, token.line)

    def _parse_for(self, pragmas: Dict[str, object]) -> ast.For:
        token = self.expect("KEYWORD", "for")
        self.expect("OP", "(")
        init: Optional[ast.Stmt] = None
        if not self.check("OP", ";"):
            if self.check("KEYWORD", "int"):
                self.expect("KEYWORD", "int")
                name_token = self.expect("ID")
                self.expect("OP", "=")
                init_expr = self._parse_expression()
                init = ast.VarDecl(name_token.value, init=init_expr,
                                   line=name_token.line)
            else:
                init = self._parse_simple_assignment()
        self.expect("OP", ";")
        cond: Optional[ast.Expr] = None
        if not self.check("OP", ";"):
            cond = self._parse_expression()
        self.expect("OP", ";")
        update: Optional[ast.Stmt] = None
        if not self.check("OP", ")"):
            update = self._parse_simple_assignment()
        self.expect("OP", ")")
        body = self._parse_block()
        bound = pragmas.get("loopbound")
        return ast.For(init, cond, update, body, bound, token.line)

    def _parse_simple_assignment(self) -> ast.Stmt:
        expr = self._parse_expression()
        op_token = self.peek()
        if op_token.kind == "OP" and op_token.value in _ASSIGN_OPS:
            self.advance()
            value = self._parse_expression()
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise FrontendError("assignment target must be a variable or "
                                    "array element", op_token.line,
                                    op_token.column)
            return ast.Assign(expr, op_token.value, value, op_token.line)
        return ast.ExprStmt(expr, op_token.line)

    def _parse_return(self) -> ast.Return:
        token = self.expect("KEYWORD", "return")
        value = None
        if not self.check("OP", ";"):
            value = self._parse_expression()
        self.expect("OP", ";")
        return ast.Return(value, token.line)

    def _parse_expression_statement(self) -> ast.Stmt:
        stmt = self._parse_simple_assignment()
        self.expect("OP", ";")
        return stmt

    # -- expressions -----------------------------------------------------------------
    def _parse_expression(self, min_precedence: int = 1) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind != "OP" or token.value not in _PRECEDENCE:
                break
            precedence = _PRECEDENCE[token.value]
            if precedence < min_precedence:
                break
            self.advance()
            rhs = self._parse_expression(precedence + 1)
            lhs = ast.Binary(token.value, lhs, rhs, token.line)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "OP" and token.value in ("-", "!", "~"):
            self.advance()
            operand = self._parse_unary()
            if token.value == "-" and isinstance(operand, ast.Num):
                return ast.Num(-operand.value, token.line)
            return ast.Unary(token.value, operand, token.line)
        if token.kind == "OP" and token.value == "+":
            self.advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "NUM":
            self.advance()
            return ast.Num(int(token.value, 0), token.line)
        if token.kind == "ID":
            self.advance()
            if self.accept("OP", "("):
                args: List[ast.Expr] = []
                if not self.check("OP", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self.accept("OP", ","):
                            break
                self.expect("OP", ")")
                return ast.Call(token.value, args, token.line)
            if self.accept("OP", "["):
                index = self._parse_expression()
                self.expect("OP", "]")
                return ast.Index(token.value, index, token.line)
            return ast.Var(token.value, token.line)
        if token.kind == "OP" and token.value == "(":
            self.advance()
            expr = self._parse_expression()
            self.expect("OP", ")")
            return expr
        raise self.error(f"unexpected token {token.value or token.kind!r} in expression")


def parse(source: str, source_name: str = "<memory>") -> ast.SourceModule:
    """Parse TeamPlay-C source text into a :class:`SourceModule`."""
    stream = scan(source)
    return _Parser(stream, source_name).parse_module()


def parse_reference(source: str,
                    source_name: str = "<memory>") -> ast.SourceModule:
    """Parse through the retained seed path (Token list + reference parser).

    Slow; exists for the parity property tests and as the benchmark
    baseline.  Guaranteed AST-equal to :func:`parse` for every valid input.
    """
    return _ReferenceParser(tokenize(source), source_name).parse_module()


# ---------------------------------------------------------------------------
# Process-wide parse cache
# ---------------------------------------------------------------------------
class ParseCache:
    """LRU cache of parsed modules, engine-cache ``stats()`` convention.

    Keys are ``(source_name, extra_key, source)`` tuples — the source
    string's cached hash acts as the fingerprint, so a warm lookup costs
    one tuple hash and one dict probe regardless of source size.  Cached
    modules are shared instances: callers must treat them as read-only
    (the compilation pipeline always clones before running passes).
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._modules: "OrderedDict[Tuple, ast.SourceModule]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._modules)

    def get(self, key: Tuple) -> Optional[ast.SourceModule]:
        module = self._modules.get(key)
        if module is not None:
            self.hits += 1
            if self.max_entries is not None:
                self._modules.move_to_end(key)
        return module

    def put(self, key: Tuple, module: ast.SourceModule) -> None:
        self.misses += 1
        self._modules[key] = module
        if self.max_entries is not None:
            self._modules.move_to_end(key)
            while len(self._modules) > self.max_entries:
                self._modules.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved, as engine caches do)."""
        self._modules.clear()

    def stats(self) -> Dict[str, Optional[int]]:
        return {
            "entries": len(self._modules),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Process-wide parse cache for :func:`parse_cached`.  Bounded: scenario
#: sweeps and the long-running evaluation service parse through here
#: indefinitely.
_PARSE_CACHE = ParseCache(max_entries=256)


def parse_cached(source: str, source_name: str = "<memory>",
                 extra_key: Tuple = ()) -> ast.SourceModule:
    """Parse with process-wide memoisation on the source fingerprint.

    Returns a shared :class:`SourceModule` instance: callers must treat it
    as read-only (the compilation pipeline always clones before running
    passes).  Use :func:`parse` when the caller intends to mutate the
    module.  ``extra_key`` widens the cache key — the compilation pipeline
    passes its frontend-stage identity, so registering a custom frontend
    pass invalidates prior entries automatically (the PR 4 contract).
    """
    key = (source_name, extra_key, source)
    module = _PARSE_CACHE.get(key)
    if module is None:
        module = parse(source, source_name)
        _PARSE_CACHE.put(key, module)
    return module


def parse_cache_stats() -> Dict[str, Optional[int]]:
    """Hit/miss/eviction counters of the process-wide parse cache."""
    return _PARSE_CACHE.stats()


def clear_parse_cache() -> None:
    """Empty the process-wide parse cache (tests and benchmarks)."""
    _PARSE_CACHE.clear()
