"""Recursive-descent parser for TeamPlay-C."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import FrontendError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, tokenize
from repro.frontend.pragmas import parse_pragma

#: Binary operator precedence, higher binds tighter.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class _Parser:
    def __init__(self, tokens: List[Token], source_name: str):
        self.tokens = tokens
        self.pos = 0
        self.source_name = source_name

    # -- token helpers ---------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if self.check(kind, value):
            return self.advance()
        token = self.peek()
        expected = value if value is not None else kind
        raise FrontendError(
            f"expected {expected!r} but found {token.value or token.kind!r}",
            token.line, token.column)

    def error(self, message: str) -> FrontendError:
        token = self.peek()
        return FrontendError(message, token.line, token.column)

    # -- module -----------------------------------------------------------------
    def parse_module(self) -> ast.SourceModule:
        module = ast.SourceModule(source_name=self.source_name)
        pending_pragmas: Dict[str, object] = {}
        while not self.check("EOF"):
            if self.check("PRAGMA"):
                token = self.advance()
                pending_pragmas.update(parse_pragma(token.value, token.line))
                continue
            if self.check("KEYWORD", "int") or self.check("KEYWORD", "void"):
                decl = self._parse_top_level(pending_pragmas)
                pending_pragmas = {}
                if isinstance(decl, ast.FunctionDef):
                    module.functions.append(decl)
                else:
                    module.globals.append(decl)
                continue
            raise self.error("expected a declaration")
        return module

    def _parse_top_level(self, pragmas: Dict[str, object]):
        type_token = self.advance()  # 'int' or 'void'
        name_token = self.expect("ID")
        if self.check("OP", "("):
            return self._parse_function(type_token, name_token, pragmas)
        if type_token.value == "void":
            raise FrontendError("global variables must have type int",
                                type_token.line, type_token.column)
        return self._parse_global_array(name_token)

    def _parse_global_array(self, name_token: Token) -> ast.GlobalArray:
        self.expect("OP", "[")
        size_token = self.expect("NUM")
        self.expect("OP", "]")
        size = int(size_token.value, 0)
        if size <= 0:
            raise FrontendError("array size must be positive",
                                size_token.line, size_token.column)
        init: Optional[List[int]] = None
        if self.accept("OP", "="):
            self.expect("OP", "{")
            init = []
            while not self.check("OP", "}"):
                negative = bool(self.accept("OP", "-"))
                value_token = self.expect("NUM")
                value = int(value_token.value, 0)
                init.append(-value if negative else value)
                if not self.accept("OP", ","):
                    break
            self.expect("OP", "}")
            if len(init) > size:
                raise FrontendError(
                    f"initialiser for {name_token.value!r} has {len(init)} "
                    f"elements but the array holds {size}",
                    name_token.line, name_token.column)
        self.expect("OP", ";")
        return ast.GlobalArray(name_token.value, size, init, name_token.line)

    def _parse_function(self, type_token: Token, name_token: Token,
                        pragmas: Dict[str, object]) -> ast.FunctionDef:
        self.expect("OP", "(")
        params: List[str] = []
        if self.accept("KEYWORD", "void"):
            pass
        elif not self.check("OP", ")"):
            while True:
                self.expect("KEYWORD", "int")
                param = self.expect("ID")
                params.append(param.value)
                if not self.accept("OP", ","):
                    break
        self.expect("OP", ")")
        self.expect("OP", "{")
        body = self._parse_statements_until_brace()
        return ast.FunctionDef(name_token.value, params, body, dict(pragmas),
                               name_token.line)

    # -- statements ----------------------------------------------------------------
    def _parse_statements_until_brace(self) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        while not self.check("OP", "}"):
            if self.check("EOF"):
                raise self.error("unexpected end of file inside a block")
            stmts.append(self._parse_statement())
        self.expect("OP", "}")
        return stmts

    def _parse_block(self) -> List[ast.Stmt]:
        if self.accept("OP", "{"):
            return self._parse_statements_until_brace()
        return [self._parse_statement()]

    def _parse_statement(self) -> ast.Stmt:
        pragmas: Dict[str, object] = {}
        while self.check("PRAGMA"):
            token = self.advance()
            pragmas.update(parse_pragma(token.value, token.line))

        if self.check("KEYWORD", "int"):
            return self._parse_vardecl()
        if self.check("KEYWORD", "if"):
            return self._parse_if()
        if self.check("KEYWORD", "while"):
            return self._parse_while(pragmas)
        if self.check("KEYWORD", "for"):
            return self._parse_for(pragmas)
        if self.check("KEYWORD", "return"):
            return self._parse_return()
        return self._parse_expression_statement()

    def _parse_vardecl(self) -> ast.VarDecl:
        self.expect("KEYWORD", "int")
        name_token = self.expect("ID")
        if self.accept("OP", "["):
            size_token = self.expect("NUM")
            self.expect("OP", "]")
            self.expect("OP", ";")
            size = int(size_token.value, 0)
            if size <= 0:
                raise FrontendError("array size must be positive",
                                    size_token.line, size_token.column)
            return ast.VarDecl(name_token.value, array_size=size,
                               line=name_token.line)
        init = None
        if self.accept("OP", "="):
            init = self._parse_expression()
        self.expect("OP", ";")
        return ast.VarDecl(name_token.value, init=init, line=name_token.line)

    def _parse_if(self) -> ast.If:
        token = self.expect("KEYWORD", "if")
        self.expect("OP", "(")
        cond = self._parse_expression()
        self.expect("OP", ")")
        then_body = self._parse_block()
        else_body: List[ast.Stmt] = []
        if self.accept("KEYWORD", "else"):
            if self.check("KEYWORD", "if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return ast.If(cond, then_body, else_body, token.line)

    def _parse_while(self, pragmas: Dict[str, object]) -> ast.While:
        token = self.expect("KEYWORD", "while")
        self.expect("OP", "(")
        cond = self._parse_expression()
        self.expect("OP", ")")
        body = self._parse_block()
        bound = pragmas.get("loopbound")
        return ast.While(cond, body, bound, token.line)

    def _parse_for(self, pragmas: Dict[str, object]) -> ast.For:
        token = self.expect("KEYWORD", "for")
        self.expect("OP", "(")
        init: Optional[ast.Stmt] = None
        if not self.check("OP", ";"):
            if self.check("KEYWORD", "int"):
                self.expect("KEYWORD", "int")
                name_token = self.expect("ID")
                self.expect("OP", "=")
                init_expr = self._parse_expression()
                init = ast.VarDecl(name_token.value, init=init_expr,
                                   line=name_token.line)
            else:
                init = self._parse_simple_assignment()
        self.expect("OP", ";")
        cond: Optional[ast.Expr] = None
        if not self.check("OP", ";"):
            cond = self._parse_expression()
        self.expect("OP", ";")
        update: Optional[ast.Stmt] = None
        if not self.check("OP", ")"):
            update = self._parse_simple_assignment()
        self.expect("OP", ")")
        body = self._parse_block()
        bound = pragmas.get("loopbound")
        return ast.For(init, cond, update, body, bound, token.line)

    def _parse_simple_assignment(self) -> ast.Stmt:
        expr = self._parse_expression()
        op_token = self.peek()
        if op_token.kind == "OP" and op_token.value in _ASSIGN_OPS:
            self.advance()
            value = self._parse_expression()
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise FrontendError("assignment target must be a variable or "
                                    "array element", op_token.line,
                                    op_token.column)
            return ast.Assign(expr, op_token.value, value, op_token.line)
        return ast.ExprStmt(expr, op_token.line)

    def _parse_return(self) -> ast.Return:
        token = self.expect("KEYWORD", "return")
        value = None
        if not self.check("OP", ";"):
            value = self._parse_expression()
        self.expect("OP", ";")
        return ast.Return(value, token.line)

    def _parse_expression_statement(self) -> ast.Stmt:
        stmt = self._parse_simple_assignment()
        self.expect("OP", ";")
        return stmt

    # -- expressions -----------------------------------------------------------------
    def _parse_expression(self, min_precedence: int = 1) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind != "OP" or token.value not in _PRECEDENCE:
                break
            precedence = _PRECEDENCE[token.value]
            if precedence < min_precedence:
                break
            self.advance()
            rhs = self._parse_expression(precedence + 1)
            lhs = ast.Binary(token.value, lhs, rhs, token.line)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "OP" and token.value in ("-", "!", "~"):
            self.advance()
            operand = self._parse_unary()
            if token.value == "-" and isinstance(operand, ast.Num):
                return ast.Num(-operand.value, token.line)
            return ast.Unary(token.value, operand, token.line)
        if token.kind == "OP" and token.value == "+":
            self.advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "NUM":
            self.advance()
            return ast.Num(int(token.value, 0), token.line)
        if token.kind == "ID":
            self.advance()
            if self.accept("OP", "("):
                args: List[ast.Expr] = []
                if not self.check("OP", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self.accept("OP", ","):
                            break
                self.expect("OP", ")")
                return ast.Call(token.value, args, token.line)
            if self.accept("OP", "["):
                index = self._parse_expression()
                self.expect("OP", "]")
                return ast.Index(token.value, index, token.line)
            return ast.Var(token.value, token.line)
        if token.kind == "OP" and token.value == "(":
            self.advance()
            expr = self._parse_expression()
            self.expect("OP", ")")
            return expr
        raise self.error(f"unexpected token {token.value or token.kind!r} in expression")


def parse(source: str, source_name: str = "<memory>") -> ast.SourceModule:
    """Parse TeamPlay-C source text into a :class:`SourceModule`."""
    tokens = tokenize(source)
    parser = _Parser(tokens, source_name)
    return parser.parse_module()


#: Process-wide parse cache for :func:`parse_cached`.
_PARSE_CACHE: dict = {}


def parse_cached(source: str, source_name: str = "<memory>") -> ast.SourceModule:
    """Parse with memoisation on the source text.

    Returns a shared :class:`SourceModule` instance: callers must treat it as
    read-only (the compilation pipeline always clones before running passes).
    Use :func:`parse` when the caller intends to mutate the module.
    """
    key = (source, source_name)
    module = _PARSE_CACHE.get(key)
    if module is None:
        module = parse(source, source_name)
        _PARSE_CACHE[key] = module
    return module
