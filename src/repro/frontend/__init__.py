"""TeamPlay-C frontend.

TeamPlay-C is the C subset accepted by this reproduction of the toolchain:
integer scalars and arrays, ``if``/``while``/``for`` control flow, function
calls, and ``#pragma teamplay`` annotations carrying the source-level ETS
information (task names, loop bounds, secret parameters, points of interest).

The frontend provides:

* :func:`tokenize` — lexer,
* :func:`parse` — recursive-descent parser producing the AST in
  :mod:`repro.frontend.ast_nodes`,
* :func:`lower_module` / :func:`compile_source` — lowering of the AST into
  the IR of :mod:`repro.ir`.
"""

from repro.frontend.lexer import Token, tokenize
from repro.frontend.parser import parse
from repro.frontend.lowering import compile_source, lower_module
from repro.frontend import ast_nodes

__all__ = [
    "Token",
    "ast_nodes",
    "compile_source",
    "lower_module",
    "parse",
    "tokenize",
]
