"""TeamPlay-C frontend.

TeamPlay-C is the C subset accepted by this reproduction of the toolchain:
integer scalars and arrays, ``if``/``while``/``for`` control flow, function
calls, and ``#pragma teamplay`` annotations carrying the source-level ETS
information (task names, loop bounds, secret parameters, points of interest).

The frontend provides:

* :func:`tokenize` — the compatibility lexer (Token objects with exact
  positions) and :func:`scan` — the parser's indexed
  :class:`~repro.frontend.lexer.TokenStream` fast path,
* :func:`parse` — the token-cursor recursive-descent parser producing the
  AST in :mod:`repro.frontend.ast_nodes`, with :func:`parse_cached` /
  :func:`parse_cache_stats` in front of it (process-wide LRU keyed by
  source fingerprint),
* :func:`lower_module` / :func:`compile_source` — lowering of the AST into
  the IR of :mod:`repro.ir`.

See ``docs/frontend.md`` for the design.
"""

from repro.frontend.lexer import Token, TokenStream, scan, tokenize
from repro.frontend.parser import (
    ParseCache,
    clear_parse_cache,
    parse,
    parse_cache_stats,
    parse_cached,
)
from repro.frontend.lowering import compile_source, lower_module
from repro.frontend import ast_nodes

__all__ = [
    "ParseCache",
    "Token",
    "TokenStream",
    "ast_nodes",
    "clear_parse_cache",
    "compile_source",
    "lower_module",
    "parse",
    "parse_cache_stats",
    "parse_cached",
    "scan",
    "tokenize",
]
