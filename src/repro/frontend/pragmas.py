"""Parsing of ``#pragma teamplay`` directives.

The TeamPlay methodology reflects ETS information into the source code.  In
this reproduction the source-level annotations are pragmas of the form::

    #pragma teamplay task(capture) period(100 ms) deadline(80 ms)
    #pragma teamplay loopbound(64)
    #pragma teamplay secret(key, nonce)
    #pragma teamplay poi(encrypt_block)

Each directive becomes one entry of the returned dictionary.  Quantities
(period, deadline, budgets) are parsed into :class:`repro.units.Quantity`.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import FrontendError
from repro.units import Quantity

#: Directives whose argument is a physical quantity.
_QUANTITY_DIRECTIVES = {"period", "deadline", "wcet_budget", "energy_budget"}
#: Directives whose argument is an integer.
_INT_DIRECTIVES = {"loopbound"}
#: Directives whose argument is a comma-separated list of identifiers.
_LIST_DIRECTIVES = {"secret", "on"}
#: Directives whose argument is a bare identifier.
_NAME_DIRECTIVES = {"task", "poi", "version"}
#: Directives with a numeric (float) argument.
_FLOAT_DIRECTIVES = {"security_level"}

_DIRECTIVE_RE = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)\s*\(([^)]*)\)")


def parse_pragma(text: str, line: int = 0) -> Dict[str, object]:
    """Parse the text after ``#pragma`` into a directive dictionary.

    Non-TeamPlay pragmas return an empty dictionary so that foreign pragmas
    are ignored rather than rejected.
    """
    stripped = text.strip()
    if not stripped.startswith("teamplay"):
        return {}
    body = stripped[len("teamplay"):].strip()
    if not body:
        raise FrontendError("empty teamplay pragma", line)

    directives: Dict[str, object] = {}
    consumed = 0
    for match in _DIRECTIVE_RE.finditer(body):
        name = match.group(1)
        arg = match.group(2).strip()
        consumed += len(match.group(0))
        directives[name] = _parse_argument(name, arg, line)
    leftovers = _DIRECTIVE_RE.sub("", body).strip()
    if leftovers:
        raise FrontendError(
            f"malformed teamplay pragma near {leftovers!r}", line)
    return directives


def _parse_argument(name: str, arg: str, line: int) -> object:
    if name in _INT_DIRECTIVES:
        try:
            value = int(arg, 0)
        except ValueError:
            raise FrontendError(f"{name} expects an integer, got {arg!r}", line)
        if value < 0:
            raise FrontendError(f"{name} must be non-negative", line)
        return value
    if name in _QUANTITY_DIRECTIVES:
        try:
            return Quantity.parse(arg)
        except ValueError as exc:
            raise FrontendError(f"{name}: {exc}", line)
    if name in _LIST_DIRECTIVES:
        items: List[str] = [item.strip() for item in arg.split(",") if item.strip()]
        if not items:
            raise FrontendError(f"{name} expects at least one identifier", line)
        return items
    if name in _FLOAT_DIRECTIVES:
        try:
            return float(arg)
        except ValueError:
            raise FrontendError(f"{name} expects a number, got {arg!r}", line)
    if name in _NAME_DIRECTIVES:
        if not arg:
            raise FrontendError(f"{name} expects an identifier", line)
        return arg
    # Unknown directives are kept verbatim so future extensions do not break
    # older toolchain versions.
    return arg


#: Memo for :func:`parse_pragma_cached`.  Real programs repeat a handful of
#: directive headers (``teamplay loopbound(64)`` on every loop), so the hot
#: path is one dict probe on the raw pragma text.
_PRAGMA_CACHE: Dict[str, Dict[str, object]] = {}
_PRAGMA_CACHE_MAX = 512


def parse_pragma_cached(text: str, line: int = 0) -> Dict[str, object]:
    """Memoised :func:`parse_pragma` keyed by the raw directive text.

    Only successful parses are cached — failures re-parse so the raised
    :class:`FrontendError` carries the caller's line number.  The returned
    dictionary is shared: callers must treat it as read-only (merge with
    ``dict.update`` rather than mutating in place).
    """
    directives = _PRAGMA_CACHE.get(text)
    if directives is None:
        directives = parse_pragma(text, line)
        if len(_PRAGMA_CACHE) >= _PRAGMA_CACHE_MAX:
            _PRAGMA_CACHE.clear()
        _PRAGMA_CACHE[text] = directives
    return directives


def merge_pragmas(*pragma_dicts: Dict[str, object]) -> Dict[str, object]:
    """Merge several pragma dictionaries; later ones win on conflicts."""
    merged: Dict[str, object] = {}
    for item in pragma_dicts:
        merged.update(item)
    return merged
