"""Abstract syntax tree of TeamPlay-C.

The AST is intentionally plain: nodes carry data and no behaviour, so
compiler passes (loop unrolling, inlining, constant folding, ladderisation)
can be written as small transformation functions over it.

Nodes are ``__slots__`` classes rather than dataclasses: the parser builds
tens of thousands of them on every cold parse, and slot storage removes the
per-instance ``__dict__`` (about half the memory and measurably faster
construction and attribute access).  Each class declares its fields once in
``_fields``; the shared :class:`_Node` base derives structural equality and
``repr`` from it, so nodes still compare and print like the dataclasses
they replaced (used by the parser parity tests), and :func:`ast_to_dict`
serialises any node to JSON-ready primitives for the AST golden fixtures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union


class _Node:
    """Shared behaviour of every AST node: field-wise ``==`` and ``repr``."""

    __slots__ = ()
    _fields: tuple = ()

    def __eq__(self, other):
        if other.__class__ is not self.__class__:
            return NotImplemented
        for name in self._fields:
            if getattr(self, name) != getattr(other, name):
                return False
        return True

    __hash__ = None  # mutable nodes, like the dataclasses they replaced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"{name}={getattr(self, name)!r}"
                         for name in self._fields)
        return f"{self.__class__.__name__}({args})"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
class Num(_Node):
    """Integer literal."""

    __slots__ = ("value", "line")
    _fields = __slots__

    def __init__(self, value: int, line: int = 0):
        self.value = value
        self.line = line


class Var(_Node):
    """Reference to a scalar variable or parameter."""

    __slots__ = ("name", "line")
    _fields = __slots__

    def __init__(self, name: str, line: int = 0):
        self.name = name
        self.line = line


class Index(_Node):
    """Array element access ``name[index]``."""

    __slots__ = ("name", "index", "line")
    _fields = __slots__

    def __init__(self, name: str, index: "Expr", line: int = 0):
        self.name = name
        self.index = index
        self.line = line


class Unary(_Node):
    """Unary operation: ``-``, ``!`` or ``~``."""

    __slots__ = ("op", "operand", "line")
    _fields = __slots__

    def __init__(self, op: str, operand: "Expr", line: int = 0):
        self.op = op
        self.operand = operand
        self.line = line


class Binary(_Node):
    """Binary operation with C-like operators."""

    __slots__ = ("op", "lhs", "rhs", "line")
    _fields = __slots__

    def __init__(self, op: str, lhs: "Expr", rhs: "Expr", line: int = 0):
        self.op = op
        self.lhs = lhs
        self.rhs = rhs
        self.line = line


class Call(_Node):
    """Function call ``name(arg, ...)``."""

    __slots__ = ("name", "args", "line")
    _fields = __slots__

    def __init__(self, name: str, args: Optional[List["Expr"]] = None,
                 line: int = 0):
        self.name = name
        self.args = [] if args is None else args
        self.line = line


Expr = Union[Num, Var, Index, Unary, Binary, Call]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
class VarDecl(_Node):
    """``int x = e;`` or ``int a[N];``"""

    __slots__ = ("name", "array_size", "init", "line")
    _fields = __slots__

    def __init__(self, name: str, array_size: Optional[int] = None,
                 init: Optional[Expr] = None, line: int = 0):
        self.name = name
        self.array_size = array_size
        self.init = init
        self.line = line


class Assign(_Node):
    """Assignment ``target op= value`` where ``op`` is ``=`` or a compound op."""

    __slots__ = ("target", "op", "value", "line")
    _fields = __slots__

    def __init__(self, target: Union[Var, Index], op: str, value: Expr,
                 line: int = 0):
        self.target = target
        self.op = op
        self.value = value
        self.line = line


class If(_Node):
    __slots__ = ("cond", "then_body", "else_body", "line")
    _fields = __slots__

    def __init__(self, cond: Expr, then_body: Optional[List["Stmt"]] = None,
                 else_body: Optional[List["Stmt"]] = None, line: int = 0):
        self.cond = cond
        self.then_body = [] if then_body is None else then_body
        self.else_body = [] if else_body is None else else_body
        self.line = line


class While(_Node):
    __slots__ = ("cond", "body", "bound", "line")
    _fields = __slots__

    def __init__(self, cond: Expr, body: Optional[List["Stmt"]] = None,
                 bound: Optional[int] = None, line: int = 0):
        self.cond = cond
        self.body = [] if body is None else body
        #: Loop bound from a ``loopbound`` pragma (None = analyse or reject).
        self.bound = bound
        self.line = line


class For(_Node):
    """``for (init; cond; update) body`` with simple init/update statements."""

    __slots__ = ("init", "cond", "update", "body", "bound", "line")
    _fields = __slots__

    def __init__(self, init: Optional["Stmt"], cond: Optional[Expr],
                 update: Optional["Stmt"],
                 body: Optional[List["Stmt"]] = None,
                 bound: Optional[int] = None, line: int = 0):
        self.init = init
        self.cond = cond
        self.update = update
        self.body = [] if body is None else body
        self.bound = bound
        self.line = line


class Return(_Node):
    __slots__ = ("value", "line")
    _fields = __slots__

    def __init__(self, value: Optional[Expr] = None, line: int = 0):
        self.value = value
        self.line = line


class ExprStmt(_Node):
    __slots__ = ("expr", "line")
    _fields = __slots__

    def __init__(self, expr: Expr, line: int = 0):
        self.expr = expr
        self.line = line


Stmt = Union[VarDecl, Assign, If, While, For, Return, ExprStmt]


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------
class FunctionDef(_Node):
    __slots__ = ("name", "params", "body", "pragmas", "line")
    _fields = __slots__

    def __init__(self, name: str, params: Optional[List[str]] = None,
                 body: Optional[List[Stmt]] = None,
                 pragmas: Optional[Dict[str, object]] = None, line: int = 0):
        self.name = name
        self.params = [] if params is None else params
        self.body = [] if body is None else body
        #: Parsed ``#pragma teamplay`` directives attached to this function.
        self.pragmas = {} if pragmas is None else pragmas
        self.line = line


class GlobalArray(_Node):
    """Top-level ``int name[N];`` possibly with an initialiser list."""

    __slots__ = ("name", "size", "init", "line")
    _fields = __slots__

    def __init__(self, name: str, size: int,
                 init: Optional[List[int]] = None, line: int = 0):
        self.name = name
        self.size = size
        self.init = init
        self.line = line


class SourceModule(_Node):
    """A parsed TeamPlay-C translation unit."""

    __slots__ = ("functions", "globals", "source_name")
    _fields = __slots__

    def __init__(self, functions: Optional[List[FunctionDef]] = None,
                 globals: Optional[List[GlobalArray]] = None,
                 source_name: str = "<memory>"):
        self.functions = [] if functions is None else functions
        self.globals = [] if globals is None else globals
        self.source_name = source_name

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    def function_names(self) -> List[str]:
        return [fn.name for fn in self.functions]


# ---------------------------------------------------------------------------
# Generic traversal / cloning helpers used by compiler passes
# ---------------------------------------------------------------------------
def clone_expr(expr: Expr) -> Expr:
    """Deep-copy an expression."""
    if isinstance(expr, Num):
        return Num(expr.value, expr.line)
    if isinstance(expr, Var):
        return Var(expr.name, expr.line)
    if isinstance(expr, Index):
        return Index(expr.name, clone_expr(expr.index), expr.line)
    if isinstance(expr, Unary):
        return Unary(expr.op, clone_expr(expr.operand), expr.line)
    if isinstance(expr, Binary):
        return Binary(expr.op, clone_expr(expr.lhs), clone_expr(expr.rhs), expr.line)
    if isinstance(expr, Call):
        return Call(expr.name, [clone_expr(a) for a in expr.args], expr.line)
    raise TypeError(f"unknown expression {type(expr)!r}")


def clone_stmt(stmt: Stmt) -> Stmt:
    """Deep-copy a statement."""
    if isinstance(stmt, VarDecl):
        init = clone_expr(stmt.init) if stmt.init is not None else None
        return VarDecl(stmt.name, stmt.array_size, init, stmt.line)
    if isinstance(stmt, Assign):
        return Assign(clone_expr(stmt.target), stmt.op, clone_expr(stmt.value),
                      stmt.line)
    if isinstance(stmt, If):
        return If(clone_expr(stmt.cond),
                  [clone_stmt(s) for s in stmt.then_body],
                  [clone_stmt(s) for s in stmt.else_body], stmt.line)
    if isinstance(stmt, While):
        return While(clone_expr(stmt.cond), [clone_stmt(s) for s in stmt.body],
                     stmt.bound, stmt.line)
    if isinstance(stmt, For):
        init = clone_stmt(stmt.init) if stmt.init is not None else None
        cond = clone_expr(stmt.cond) if stmt.cond is not None else None
        update = clone_stmt(stmt.update) if stmt.update is not None else None
        return For(init, cond, update, [clone_stmt(s) for s in stmt.body],
                   stmt.bound, stmt.line)
    if isinstance(stmt, Return):
        value = clone_expr(stmt.value) if stmt.value is not None else None
        return Return(value, stmt.line)
    if isinstance(stmt, ExprStmt):
        return ExprStmt(clone_expr(stmt.expr), stmt.line)
    raise TypeError(f"unknown statement {type(stmt)!r}")


def clone_function(fn: FunctionDef) -> FunctionDef:
    return FunctionDef(fn.name, list(fn.params),
                       [clone_stmt(s) for s in fn.body],
                       dict(fn.pragmas), fn.line)


def clone_module(module: SourceModule) -> SourceModule:
    return SourceModule(
        functions=[clone_function(fn) for fn in module.functions],
        globals=[GlobalArray(g.name, g.size, list(g.init) if g.init else None,
                             g.line)
                 for g in module.globals],
        source_name=module.source_name,
    )


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression."""
    yield expr
    if isinstance(expr, Index):
        yield from walk_expr(expr.index)
    elif isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_expr(expr.lhs)
        yield from walk_expr(expr.rhs)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)


def walk_stmts(stmts: List[Stmt]):
    """Yield every statement in ``stmts``, recursively."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                yield stmt.init
            if stmt.update is not None:
                yield stmt.update
            yield from walk_stmts(stmt.body)


def stmt_expressions(stmt: Stmt) -> List[Expr]:
    """Top-level expressions contained directly in ``stmt``."""
    if isinstance(stmt, VarDecl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, Assign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, While):
        return [stmt.cond]
    if isinstance(stmt, For):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ExprStmt):
        return [stmt.expr]
    return []


# ---------------------------------------------------------------------------
# Serialisation (AST golden fixtures)
# ---------------------------------------------------------------------------
def ast_to_dict(node) -> object:
    """Serialise an AST node (or list / primitive) to JSON-ready values.

    Every node becomes ``{"node": <class name>, <field>: <value>, ...}``
    with fields in declaration order — a stable, human-diffable form the
    AST golden fixtures under ``tests/golden/`` pin bit-for-bit.
    """
    if isinstance(node, _Node):
        document: Dict[str, object] = {"node": node.__class__.__name__}
        for name in node._fields:
            document[name] = ast_to_dict(getattr(node, name))
        return document
    if isinstance(node, list):
        return [ast_to_dict(item) for item in node]
    if isinstance(node, dict):
        return {key: ast_to_dict(value) for key, value in node.items()}
    if node.__class__.__name__ == "Quantity":  # pragma values (period, …)
        return {"quantity": node.value, "dimension": node.dimension}
    return node
