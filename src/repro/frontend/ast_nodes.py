"""Abstract syntax tree of TeamPlay-C.

The AST is intentionally plain: dataclasses with no behaviour, so compiler
passes (loop unrolling, inlining, constant folding, ladderisation) can be
written as small transformation functions over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------
@dataclass
class Num:
    """Integer literal."""

    value: int
    line: int = 0


@dataclass
class Var:
    """Reference to a scalar variable or parameter."""

    name: str
    line: int = 0


@dataclass
class Index:
    """Array element access ``name[index]``."""

    name: str
    index: "Expr"
    line: int = 0


@dataclass
class Unary:
    """Unary operation: ``-``, ``!`` or ``~``."""

    op: str
    operand: "Expr"
    line: int = 0


@dataclass
class Binary:
    """Binary operation with C-like operators."""

    op: str
    lhs: "Expr"
    rhs: "Expr"
    line: int = 0


@dataclass
class Call:
    """Function call ``name(arg, ...)``."""

    name: str
    args: List["Expr"] = field(default_factory=list)
    line: int = 0


Expr = Union[Num, Var, Index, Unary, Binary, Call]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------
@dataclass
class VarDecl:
    """``int x = e;`` or ``int a[N];``"""

    name: str
    array_size: Optional[int] = None
    init: Optional[Expr] = None
    line: int = 0


@dataclass
class Assign:
    """Assignment ``target op= value`` where ``op`` is ``=`` or a compound op."""

    target: Union[Var, Index]
    op: str
    value: Expr
    line: int = 0


@dataclass
class If:
    cond: Expr
    then_body: List["Stmt"] = field(default_factory=list)
    else_body: List["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class While:
    cond: Expr
    body: List["Stmt"] = field(default_factory=list)
    #: Loop bound from a ``loopbound`` pragma (None = analyse or reject).
    bound: Optional[int] = None
    line: int = 0


@dataclass
class For:
    """``for (init; cond; update) body`` with simple init/update statements."""

    init: Optional["Stmt"]
    cond: Optional[Expr]
    update: Optional["Stmt"]
    body: List["Stmt"] = field(default_factory=list)
    bound: Optional[int] = None
    line: int = 0


@dataclass
class Return:
    value: Optional[Expr] = None
    line: int = 0


@dataclass
class ExprStmt:
    expr: Expr
    line: int = 0


Stmt = Union[VarDecl, Assign, If, While, For, Return, ExprStmt]


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------
@dataclass
class FunctionDef:
    name: str
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    #: Parsed ``#pragma teamplay`` directives attached to this function.
    pragmas: Dict[str, object] = field(default_factory=dict)
    line: int = 0


@dataclass
class GlobalArray:
    """Top-level ``int name[N];`` possibly with an initialiser list."""

    name: str
    size: int
    init: Optional[List[int]] = None
    line: int = 0


@dataclass
class SourceModule:
    """A parsed TeamPlay-C translation unit."""

    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[GlobalArray] = field(default_factory=list)
    source_name: str = "<memory>"

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    def function_names(self) -> List[str]:
        return [fn.name for fn in self.functions]


# ---------------------------------------------------------------------------
# Generic traversal / cloning helpers used by compiler passes
# ---------------------------------------------------------------------------
def clone_expr(expr: Expr) -> Expr:
    """Deep-copy an expression."""
    if isinstance(expr, Num):
        return Num(expr.value, expr.line)
    if isinstance(expr, Var):
        return Var(expr.name, expr.line)
    if isinstance(expr, Index):
        return Index(expr.name, clone_expr(expr.index), expr.line)
    if isinstance(expr, Unary):
        return Unary(expr.op, clone_expr(expr.operand), expr.line)
    if isinstance(expr, Binary):
        return Binary(expr.op, clone_expr(expr.lhs), clone_expr(expr.rhs), expr.line)
    if isinstance(expr, Call):
        return Call(expr.name, [clone_expr(a) for a in expr.args], expr.line)
    raise TypeError(f"unknown expression {type(expr)!r}")


def clone_stmt(stmt: Stmt) -> Stmt:
    """Deep-copy a statement."""
    if isinstance(stmt, VarDecl):
        init = clone_expr(stmt.init) if stmt.init is not None else None
        return VarDecl(stmt.name, stmt.array_size, init, stmt.line)
    if isinstance(stmt, Assign):
        return Assign(clone_expr(stmt.target), stmt.op, clone_expr(stmt.value),
                      stmt.line)
    if isinstance(stmt, If):
        return If(clone_expr(stmt.cond),
                  [clone_stmt(s) for s in stmt.then_body],
                  [clone_stmt(s) for s in stmt.else_body], stmt.line)
    if isinstance(stmt, While):
        return While(clone_expr(stmt.cond), [clone_stmt(s) for s in stmt.body],
                     stmt.bound, stmt.line)
    if isinstance(stmt, For):
        init = clone_stmt(stmt.init) if stmt.init is not None else None
        cond = clone_expr(stmt.cond) if stmt.cond is not None else None
        update = clone_stmt(stmt.update) if stmt.update is not None else None
        return For(init, cond, update, [clone_stmt(s) for s in stmt.body],
                   stmt.bound, stmt.line)
    if isinstance(stmt, Return):
        value = clone_expr(stmt.value) if stmt.value is not None else None
        return Return(value, stmt.line)
    if isinstance(stmt, ExprStmt):
        return ExprStmt(clone_expr(stmt.expr), stmt.line)
    raise TypeError(f"unknown statement {type(stmt)!r}")


def clone_function(fn: FunctionDef) -> FunctionDef:
    return FunctionDef(fn.name, list(fn.params),
                       [clone_stmt(s) for s in fn.body],
                       dict(fn.pragmas), fn.line)


def clone_module(module: SourceModule) -> SourceModule:
    return SourceModule(
        functions=[clone_function(fn) for fn in module.functions],
        globals=[GlobalArray(g.name, g.size, list(g.init) if g.init else None,
                             g.line)
                 for g in module.globals],
        source_name=module.source_name,
    )


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression."""
    yield expr
    if isinstance(expr, Index):
        yield from walk_expr(expr.index)
    elif isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_expr(expr.lhs)
        yield from walk_expr(expr.rhs)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)


def walk_stmts(stmts: List[Stmt]):
    """Yield every statement in ``stmts``, recursively."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                yield stmt.init
            if stmt.update is not None:
                yield stmt.update
            yield from walk_stmts(stmt.body)


def stmt_expressions(stmt: Stmt) -> List[Expr]:
    """Top-level expressions contained directly in ``stmt``."""
    if isinstance(stmt, VarDecl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, Assign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, While):
        return [stmt.cond]
    if isinstance(stmt, For):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ExprStmt):
        return [stmt.expr]
    return []
