"""Lowering of the TeamPlay-C AST into the RISC-like IR.

The lowering produces, for each function, a control-flow graph *and* a region
tree that partitions the CFG's blocks.  The invariant maintained here (and
checked by :meth:`repro.ir.cfg.Function.validate`) is that every basic block
appears in exactly one region leaf — this is what allows the WCET and
worst-case-energy analyses to be exact structural recursions.

Semantics notes:

* ``&&`` and ``||`` are *not* short-circuiting; both operands are evaluated
  and combined on their truth values.  This keeps lowering branch-free, which
  is also convenient for the security transformations.
* Arrays are either global or function-local; they cannot be passed as
  parameters (integers are passed by value).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import FrontendError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.ir import cfg as ircfg
from repro.ir import instructions as ins
from repro.ir.instructions import Imm, Opcode, Operand, Reg
from repro.ir.regions import BlockRegion, IfRegion, LoopRegion, SeqRegion

_BINOP_OPCODES = {
    "+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL, "/": Opcode.DIV,
    "%": Opcode.MOD, "&": Opcode.AND, "|": Opcode.OR, "^": Opcode.XOR,
    "<<": Opcode.SHL, ">>": Opcode.SHR,
    "<": Opcode.CMPLT, "<=": Opcode.CMPLE, ">": Opcode.CMPGT,
    ">=": Opcode.CMPGE, "==": Opcode.CMPEQ, "!=": Opcode.CMPNE,
}

_UNOP_OPCODES = {"-": Opcode.NEG, "~": Opcode.NOT, "!": Opcode.LNOT}

_COMPOUND_OPS = {
    "+=": Opcode.ADD, "-=": Opcode.SUB, "*=": Opcode.MUL, "/=": Opcode.DIV,
    "%=": Opcode.MOD, "&=": Opcode.AND, "|=": Opcode.OR, "^=": Opcode.XOR,
    "<<=": Opcode.SHL, ">>=": Opcode.SHR,
}


class _FunctionLowerer:
    """Lowers a single :class:`FunctionDef` into an IR :class:`Function`."""

    def __init__(self, funcdef: ast.FunctionDef, global_arrays: Dict[str, int],
                 function_names: List[str]):
        self.funcdef = funcdef
        self.global_arrays = global_arrays
        self.function_names = set(function_names)
        self.fn = ircfg.Function(name=funcdef.name, params=list(funcdef.params))
        self.scalars = set(funcdef.params)
        self.temp_counter = 0
        self.label_counter = 0
        self.loop_counter = 0
        self.current: Optional[ircfg.BasicBlock] = None

    # -- helpers -----------------------------------------------------------------
    def _error(self, message: str, line: int = 0) -> FrontendError:
        return FrontendError(f"{self.funcdef.name}: {message}", line)

    def new_temp(self) -> Reg:
        self.temp_counter += 1
        return Reg(f"t{self.temp_counter}")

    def new_block(self, hint: str) -> ircfg.BasicBlock:
        self.label_counter += 1
        label = f"{hint}.{self.label_counter}"
        return self.fn.add_block(ircfg.BasicBlock(label))

    def emit(self, instr: ins.Instr) -> None:
        assert self.current is not None
        self.current.instrs.append(instr)

    # -- entry point ---------------------------------------------------------------
    def lower(self) -> ircfg.Function:
        self._apply_pragmas()
        entry = self.fn.add_block(ircfg.BasicBlock("entry"))
        self.fn.entry = "entry"
        self.current = entry
        region = self.lower_statements(self.funcdef.body)
        if self.current.terminator is None:
            self.emit(ins.ret(Imm(0)))
        self.fn.region = region
        self._prune_unreachable()
        self.fn.validate()
        return self.fn

    def _prune_unreachable(self) -> None:
        """Drop blocks that cannot be reached (code after a ``return``).

        Keeping them would be safe but would inflate the structural
        worst-case bounds with code that can never execute.
        """
        reachable = {self.fn.entry}
        worklist = [self.fn.entry]
        while worklist:
            label = worklist.pop()
            for successor in self.fn.blocks[label].successors():
                if successor not in reachable:
                    reachable.add(successor)
                    worklist.append(successor)
        if len(reachable) == len(self.fn.blocks):
            return
        self.fn.blocks = {label: block for label, block in self.fn.blocks.items()
                          if label in reachable}
        pruned = _prune_region(self.fn.region, reachable)
        self.fn.region = pruned if pruned is not None else SeqRegion()

    def _apply_pragmas(self) -> None:
        pragmas = self.funcdef.pragmas
        if "task" in pragmas:
            self.fn.annotations["task"] = pragmas["task"]
        if "poi" in pragmas:
            self.fn.annotations["poi"] = pragmas["poi"]
        for key in ("period", "deadline", "wcet_budget", "energy_budget",
                    "security_level", "version", "on"):
            if key in pragmas:
                self.fn.annotations[key] = pragmas[key]
        secrets = pragmas.get("secret", [])
        for name in secrets:
            if name not in self.funcdef.params:
                raise self._error(
                    f"secret parameter {name!r} is not a parameter",
                    self.funcdef.line)
        self.fn.secret_params = list(secrets)

    # -- statements -------------------------------------------------------------------
    def lower_statements(self, stmts: List[ast.Stmt]) -> SeqRegion:
        """Lower ``stmts`` starting in ``self.current``.

        Returns a region covering every block created, including the block
        left open in ``self.current`` when the method returns.
        """
        seq = SeqRegion()
        for stmt in stmts:
            self.lower_statement(stmt, seq)
        seq.children.append(BlockRegion(self.current.label))
        return seq

    def lower_statement(self, stmt: ast.Stmt, seq: SeqRegion) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._lower_vardecl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt, seq)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt, seq)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt, seq)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt, seq)
        else:  # pragma: no cover - defensive
            raise self._error(f"unsupported statement {type(stmt).__name__}")

    def _lower_vardecl(self, stmt: ast.VarDecl) -> None:
        if stmt.array_size is not None:
            if stmt.name in self.fn.local_arrays or stmt.name in self.global_arrays:
                raise self._error(f"array {stmt.name!r} redeclared", stmt.line)
            self.fn.local_arrays[stmt.name] = stmt.array_size
            return
        self.scalars.add(stmt.name)
        if stmt.init is not None:
            value = self.lower_expr(stmt.init)
            self.emit(ins.mov(Reg(stmt.name), value))
        else:
            self.emit(ins.mov(Reg(stmt.name), Imm(0)))

    def _lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Var):
            if target.name not in self.scalars:
                raise self._error(f"assignment to undeclared variable "
                                  f"{target.name!r}", stmt.line)
            dst = Reg(target.name)
            if stmt.op == "=":
                value = self.lower_expr(stmt.value)
                self.emit(ins.mov(dst, value))
            else:
                opcode = _COMPOUND_OPS[stmt.op]
                value = self.lower_expr(stmt.value)
                self.emit(ins.binop(opcode, dst, dst, value))
            return
        if isinstance(target, ast.Index):
            self._check_array(target.name, stmt.line)
            index = self.lower_expr(target.index)
            if stmt.op == "=":
                value = self.lower_expr(stmt.value)
                self.emit(ins.store(target.name, index, value))
            else:
                opcode = _COMPOUND_OPS[stmt.op]
                old = self.new_temp()
                self.emit(ins.load(old, target.name, index))
                value = self.lower_expr(stmt.value)
                result = self.new_temp()
                self.emit(ins.binop(opcode, result, old, value))
                self.emit(ins.store(target.name, index, result))
            return
        raise self._error("invalid assignment target", stmt.line)

    def _lower_return(self, stmt: ast.Return, seq: SeqRegion) -> None:
        value = self.lower_expr(stmt.value) if stmt.value is not None else Imm(0)
        self.emit(ins.ret(value))
        # Code textually after a return goes into an unreachable block so the
        # current block keeps a single terminator; the finished block joins
        # the region tree here because the end-of-list append will only see
        # the new block.
        seq.children.append(BlockRegion(self.current.label))
        self.current = self.new_block("dead")

    def _lower_if(self, stmt: ast.If, seq: SeqRegion) -> None:
        cond_block = self.new_block("if.cond")
        self.emit(ins.jump(cond_block.label))
        seq.children.append(BlockRegion(self.current.label))

        self.current = cond_block
        cond_value = self.lower_expr(stmt.cond)
        then_block = self.new_block("if.then")
        else_block = self.new_block("if.else")
        join_block = self.new_block("if.join")
        # The branch must live in the block where the condition was computed,
        # which may have changed if the condition contained nested statements.
        self.emit(ins.branch(cond_value, then_block.label, else_block.label))
        cond_label = self.current.label

        self.current = then_block
        then_region = self.lower_statements(stmt.then_body)
        self.emit(ins.jump(join_block.label))

        self.current = else_block
        else_region = self.lower_statements(stmt.else_body)
        self.emit(ins.jump(join_block.label))

        seq.children.append(IfRegion(cond_label, then_region, else_region))
        self.current = join_block

    def _lower_while(self, stmt: ast.While, seq: SeqRegion) -> None:
        cond_block = self.new_block("while.cond")
        self.emit(ins.jump(cond_block.label))
        seq.children.append(BlockRegion(self.current.label))

        self.current = cond_block
        cond_value = self.lower_expr(stmt.cond)
        body_block = self.new_block("while.body")
        exit_block = self.new_block("while.exit")
        self.emit(ins.branch(cond_value, body_block.label, exit_block.label))
        cond_label = self.current.label

        self.current = body_block
        body_region = self.lower_statements(stmt.body)
        self.emit(ins.jump(cond_block.label))

        self.loop_counter += 1
        seq.children.append(LoopRegion(cond_label, body_region,
                                       bound=stmt.bound,
                                       pragma_bound=stmt.bound,
                                       loop_id=self.loop_counter))
        self.current = exit_block

    def _lower_for(self, stmt: ast.For, seq: SeqRegion) -> None:
        if stmt.init is not None:
            self.lower_statement(stmt.init, seq)
        cond_block = self.new_block("for.cond")
        self.emit(ins.jump(cond_block.label))
        seq.children.append(BlockRegion(self.current.label))

        self.current = cond_block
        if stmt.cond is not None:
            cond_value = self.lower_expr(stmt.cond)
        else:
            cond_value = Imm(1)
        body_block = self.new_block("for.body")
        exit_block = self.new_block("for.exit")
        self.emit(ins.branch(cond_value, body_block.label, exit_block.label))
        cond_label = self.current.label

        self.current = body_block
        body_stmts = list(stmt.body)
        if stmt.update is not None:
            body_stmts.append(stmt.update)
        body_region = self.lower_statements(body_stmts)
        self.emit(ins.jump(cond_block.label))

        self.loop_counter += 1
        seq.children.append(LoopRegion(cond_label, body_region,
                                       bound=stmt.bound,
                                       pragma_bound=stmt.bound,
                                       loop_id=self.loop_counter))
        self.current = exit_block

    # -- expressions ---------------------------------------------------------------------
    def _check_array(self, name: str, line: int) -> None:
        if name not in self.fn.local_arrays and name not in self.global_arrays:
            raise self._error(f"unknown array {name!r}", line)

    def lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.Num):
            return Imm(expr.value)
        if isinstance(expr, ast.Var):
            if expr.name not in self.scalars:
                raise self._error(f"use of undeclared variable {expr.name!r}",
                                  expr.line)
            return Reg(expr.name)
        if isinstance(expr, ast.Index):
            self._check_array(expr.name, expr.line)
            index = self.lower_expr(expr.index)
            dst = self.new_temp()
            self.emit(ins.load(dst, expr.name, index))
            return dst
        if isinstance(expr, ast.Unary):
            operand = self.lower_expr(expr.operand)
            dst = self.new_temp()
            self.emit(ins.unop(_UNOP_OPCODES[expr.op], dst, operand))
            return dst
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        raise self._error(f"unsupported expression {type(expr).__name__}")

    def _lower_binary(self, expr: ast.Binary) -> Operand:
        if expr.op in ("&&", "||"):
            lhs = self.lower_expr(expr.lhs)
            rhs = self.lower_expr(expr.rhs)
            lhs_bool = self.new_temp()
            rhs_bool = self.new_temp()
            self.emit(ins.binop(Opcode.CMPNE, lhs_bool, lhs, Imm(0)))
            self.emit(ins.binop(Opcode.CMPNE, rhs_bool, rhs, Imm(0)))
            dst = self.new_temp()
            opcode = Opcode.AND if expr.op == "&&" else Opcode.OR
            self.emit(ins.binop(opcode, dst, lhs_bool, rhs_bool))
            return dst
        opcode = _BINOP_OPCODES.get(expr.op)
        if opcode is None:
            raise self._error(f"unsupported operator {expr.op!r}", expr.line)
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        dst = self.new_temp()
        self.emit(ins.binop(opcode, dst, lhs, rhs))
        return dst

    def _lower_call(self, expr: ast.Call) -> Operand:
        if expr.name not in self.function_names:
            raise self._error(f"call to unknown function {expr.name!r}",
                              expr.line)
        args = tuple(self.lower_expr(arg) for arg in expr.args)
        dst = self.new_temp()
        self.emit(ins.call(dst, expr.name, args))
        return dst


def _prune_region(region, reachable):
    """Remove region-tree leaves whose blocks were pruned; None = all gone."""
    if isinstance(region, BlockRegion):
        return region if region.label in reachable else None
    if isinstance(region, SeqRegion):
        children = []
        for child in region.children:
            kept = _prune_region(child, reachable)
            if kept is not None:
                children.append(kept)
        return SeqRegion(children) if children else None
    if isinstance(region, IfRegion):
        if region.cond_label not in reachable:
            return None
        then_region = _prune_region(region.then_region, reachable) or SeqRegion()
        else_region = _prune_region(region.else_region, reachable) or SeqRegion()
        return IfRegion(region.cond_label, then_region, else_region)
    if isinstance(region, LoopRegion):
        if region.cond_label not in reachable:
            return None
        body = _prune_region(region.body_region, reachable) or SeqRegion()
        return LoopRegion(region.cond_label, body, region.bound,
                          region.pragma_bound, region.loop_id)
    raise TypeError(f"unknown region type {type(region)!r}")  # pragma: no cover


def lower_module(module: ast.SourceModule) -> ircfg.Program:
    """Lower a parsed :class:`SourceModule` into an IR :class:`Program`."""
    program = ircfg.Program(source_name=module.source_name)
    global_init: Dict[str, List[int]] = {}
    for glob in module.globals:
        if glob.name in program.global_arrays:
            raise FrontendError(f"global array {glob.name!r} redeclared",
                                glob.line)
        program.global_arrays[glob.name] = glob.size
        if glob.init is not None:
            global_init[glob.name] = list(glob.init)
    if global_init:
        program.metadata["global_init"] = global_init

    function_names = module.function_names()
    for funcdef in module.functions:
        lowerer = _FunctionLowerer(funcdef, program.global_arrays, function_names)
        program.add_function(lowerer.lower())
    program.validate()
    return program


def compile_source(source: str, source_name: str = "<memory>",
                   infer_bounds: bool = True) -> ircfg.Program:
    """Parse and lower TeamPlay-C ``source`` in one step (no optimisation).

    ``infer_bounds`` runs the loop-bound analysis for counted ``for`` loops
    so the result is immediately analysable; ``loopbound`` pragmas are kept
    untouched either way.
    """
    module = parse(source, source_name)
    if infer_bounds:
        # Imported lazily: the loop-bound analysis lives with the WCET
        # analyser but only depends on the AST module.
        from repro.wcet.loopbounds import infer_loop_bounds
        infer_loop_bounds(module)
    return lower_module(module)
