"""Static worst-case energy analysis (the EnergyAnalyser).

Mirrors the WCET analysis: a structural recursion over the region tree, with
per-instruction worst-case *energy* instead of cycles, plus the static
(leakage) contribution accumulated over the WCET-bounded execution time.  The
result is a worst-case energy consumption (WCEC) bound that the simulator can
never exceed with the same hardware tables — the property the contract system
relies on when discharging energy budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AnalysisError
from repro.energy.isa_model import IsaEnergyModel
from repro.hw.core import Core
from repro.hw.dvfs import OperatingPoint
from repro.hw.platform import Platform
from repro.ir.cfg import Function, Program
from repro.ir.instructions import Instr
from repro.wcet.analyzer import WCETAnalyzer
from repro.wcet.paths import PathSensitiveCostEngine
from repro.wcet.structural import StructuralCostEngine


@dataclass
class WCECResult:
    """Worst-case energy consumption bound for one entry function."""

    function: str
    dynamic_energy_j: float
    static_energy_j: float
    wcet_time_s: float
    frequency_hz: float

    @property
    def energy_j(self) -> float:
        return self.dynamic_energy_j + self.static_energy_j


class EnergyAnalyzer:
    """Static WCEC analysis on IR programs for a predictable core."""

    def __init__(self, platform: Platform, core: Optional[Core] = None,
                 opp: Optional[OperatingPoint] = None,
                 model: Optional[IsaEnergyModel] = None):
        core = core or next(iter(platform.predictable_cores), None)
        if core is None:
            raise AnalysisError(
                f"platform {platform.name!r} has no predictable core; use the "
                f"component-based model for complex architectures")
        self.platform = platform
        self.core = core
        self.opp = opp or core.nominal_opp
        self.model = model or IsaEnergyModel.from_core(
            core, memory_access_j=platform.memory.access_energy())
        self.wcet = WCETAnalyzer(platform, core=core, opp=self.opp)

    # -- cost model -------------------------------------------------------------
    def _instr_energy(self, function: Function, instr: Instr,
                      opp: Optional[OperatingPoint] = None) -> float:
        return self.model.instruction_energy(
            instr.instruction_class,
            opp=opp or self.opp,
            with_overhead=True,
            is_memory_access=instr.is_memory_access,
        )

    # -- public API --------------------------------------------------------------
    def analyze(self, program: Program, function_name: str,
                opp: Optional[OperatingPoint] = None,
                path_sensitive: bool = False) -> WCECResult:
        """Compute the WCEC bound of ``function_name`` (including callees).

        With ``path_sensitive`` both the dynamic-energy maximisation and the
        WCET bound behind the static-leakage term exclude infeasible paths
        (see :mod:`repro.wcet.paths`).
        """
        opp = opp or self.opp
        program.validate()
        if program.has_recursion():
            raise AnalysisError("programs with recursion are not analysable")

        energy_cost = lambda fn, instr: self._instr_energy(fn, instr, opp)
        if path_sensitive:
            engine = PathSensitiveCostEngine(program, energy_cost)
        else:
            engine = StructuralCostEngine(program, energy_cost)
        dynamic = engine.function_cost(function_name)

        wcet_result = self.wcet.analyze(program, function_name, opp=opp,
                                        path_sensitive=path_sensitive)
        static = self.model.static_power(opp) * wcet_result.time_s

        return WCECResult(
            function=function_name,
            dynamic_energy_j=dynamic,
            static_energy_j=static,
            wcet_time_s=wcet_result.time_s,
            frequency_hz=opp.frequency_hz,
        )

    def analyze_all_tasks(self, program: Program,
                          opp: Optional[OperatingPoint] = None
                          ) -> Dict[str, WCECResult]:
        """WCEC of every function carrying a ``task`` annotation."""
        return {task: self.analyze(program, fn.name, opp)
                for task, fn in program.task_functions.items()}

    def sweep_operating_points(self, program: Program, function_name: str
                               ) -> Dict[str, WCECResult]:
        """WCEC at every operating point of the core (DVFS sweet-spot data)."""
        return {opp.label: self.analyze(program, function_name, opp=opp)
                for opp in self.core.operating_points}
