"""Energy modelling and analysis.

This package covers the paper's "energy modelling challenge":

* :mod:`repro.energy.isa_model` — ISA-level energy models for predictable
  cores (per-instruction-class costs plus inter-instruction overhead), as in
  the Cortex-M0 model of Georgiou et al.,
* :mod:`repro.energy.measurements` — the data-collection step: synthetic
  measurement campaigns run on the simulator with measurement noise,
* :mod:`repro.energy.fitting` — regression-based model generation from the
  collected measurements, with accuracy metrics,
* :mod:`repro.energy.static_analyzer` — the EnergyAnalyser: static
  worst-case energy consumption (WCEC) bounds for tasks,
* :mod:`repro.energy.component_model` — coarse-grained, component-based
  models for complex architectures (the PowProfiler approach).
"""

from repro.energy.isa_model import IsaEnergyModel
from repro.energy.static_analyzer import EnergyAnalyzer, WCECResult
from repro.energy.fitting import FitReport, fit_isa_model
from repro.energy.measurements import MeasurementCampaign, MeasurementSample
from repro.energy.component_model import ComponentEnergyModel, ComponentLoad

__all__ = [
    "ComponentEnergyModel",
    "ComponentLoad",
    "EnergyAnalyzer",
    "FitReport",
    "IsaEnergyModel",
    "MeasurementCampaign",
    "MeasurementSample",
    "WCECResult",
    "fit_isa_model",
]
