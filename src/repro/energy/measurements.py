"""Synthetic measurement campaigns.

On the physical boards, energy model generation starts with a data-collection
phase: instrumented benchmark kernels are executed while an external power
monitor samples the supply rails.  Our substitute runs the benchmark kernels
on the simulator, uses the reference hardware tables as "ground truth", and
perturbs the readings with multiplicative Gaussian noise to emulate a real
measurement chain.  The resulting samples are what the regression in
:mod:`repro.energy.fitting` consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.core import Core
from repro.hw.platform import Platform
from repro.ir.cfg import Program
from repro.sim.machine import Simulator


@dataclass
class MeasurementSample:
    """One measured benchmark execution."""

    benchmark: str
    class_counts: Dict[str, float]
    measured_energy_j: float
    measured_time_s: float
    true_energy_j: float


@dataclass
class MeasurementCampaign:
    """A collection of measurement samples for model fitting."""

    platform_name: str
    samples: List[MeasurementSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def class_names(self) -> List[str]:
        names = set()
        for sample in self.samples:
            names.update(sample.class_counts)
        return sorted(names)


def _class_counts(events) -> Dict[str, float]:
    counts: Dict[str, float] = {}
    for event in events:
        counts[event.instruction_class] = counts.get(event.instruction_class, 0) + 1
    return counts


def run_campaign(program: Program, platform: Platform,
                 benchmarks: Sequence[Tuple[str, str, Sequence[int]]],
                 core: Optional[Core] = None,
                 noise_std: float = 0.03,
                 repetitions: int = 3,
                 seed: int = 0) -> MeasurementCampaign:
    """Execute ``benchmarks`` and collect noisy energy measurements.

    ``benchmarks`` is a sequence of ``(label, function_name, args)`` tuples.
    Each benchmark is executed ``repetitions`` times; every execution yields
    one sample whose measured energy is the simulator's energy perturbed by
    multiplicative Gaussian noise of relative standard deviation
    ``noise_std``.
    """
    if noise_std < 0:
        raise ValueError("noise_std must be non-negative")
    rng = random.Random(seed)
    campaign = MeasurementCampaign(platform_name=platform.name)
    simulator = Simulator(program, platform, core=core, record_trace=True)
    for label, function_name, args in benchmarks:
        for _ in range(repetitions):
            result = simulator.run(function_name, args)
            noise = rng.gauss(1.0, noise_std) if noise_std > 0 else 1.0
            campaign.samples.append(MeasurementSample(
                benchmark=label,
                class_counts=_class_counts(result.events),
                measured_energy_j=result.energy_j * max(noise, 0.0),
                measured_time_s=result.time_s,
                true_energy_j=result.energy_j,
            ))
    return campaign
