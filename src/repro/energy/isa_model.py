"""ISA-level energy model for predictable cores.

The model assigns a dynamic energy cost to each instruction class, an
inter-instruction switching overhead paid when consecutive instructions
belong to different classes, a per-memory-access energy, and a static
(leakage) power.  It can be instantiated directly from a platform's
:class:`~repro.hw.core.Core` tables (the "reference" model) or from fitted
coefficients produced by :mod:`repro.energy.fitting`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import AnalysisError
from repro.hw.core import Core, INSTRUCTION_CLASSES
from repro.hw.dvfs import OperatingPoint


@dataclass
class IsaEnergyModel:
    """Energy characterisation of a predictable core.

    All energies are joules at the model's nominal operating point; scaling to
    other operating points follows the usual ``V^2`` rule for dynamic energy.
    """

    name: str
    per_class_j: Dict[str, float]
    inter_class_overhead_j: float
    memory_access_j: float
    static_power_w: float
    nominal_opp: OperatingPoint

    def __post_init__(self):
        missing = [cls for cls in INSTRUCTION_CLASSES if cls not in self.per_class_j]
        if missing:
            raise AnalysisError(f"energy model {self.name!r} missing classes {missing}")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_core(cls, core: Core, memory_access_j: float = 0.0) -> "IsaEnergyModel":
        """The reference model: the tables the hardware preset was built with."""
        return cls(
            name=f"{core.name}-reference",
            per_class_j=dict(core.energy_table),
            inter_class_overhead_j=core.inter_class_overhead_j,
            memory_access_j=memory_access_j,
            static_power_w=core.static_power_w,
            nominal_opp=core.nominal_opp,
        )

    @classmethod
    def from_coefficients(cls, name: str, coefficients: Mapping[str, float],
                          nominal_opp: OperatingPoint,
                          static_power_w: float = 0.0) -> "IsaEnergyModel":
        """Build a model from fitted per-class coefficients.

        The fitting procedure folds the memory-access energy and switching
        overhead into the per-class coefficients, so those extra terms are
        zero here.
        """
        per_class = {cls: max(0.0, float(coefficients.get(cls, 0.0)))
                     for cls in INSTRUCTION_CLASSES}
        return cls(name=name, per_class_j=per_class, inter_class_overhead_j=0.0,
                   memory_access_j=0.0, static_power_w=static_power_w,
                   nominal_opp=nominal_opp)

    # -- evaluation ---------------------------------------------------------------
    def _scale(self, opp: Optional[OperatingPoint]) -> float:
        opp = opp or self.nominal_opp
        return opp.dynamic_scale(self.nominal_opp)

    def instruction_energy(self, instruction_class: str,
                           opp: Optional[OperatingPoint] = None,
                           with_overhead: bool = True,
                           is_memory_access: bool = False) -> float:
        """Worst-case dynamic energy of one instruction of a class."""
        if instruction_class not in self.per_class_j:
            raise AnalysisError(
                f"energy model {self.name!r} has no class {instruction_class!r}")
        energy = self.per_class_j[instruction_class]
        if with_overhead:
            energy += self.inter_class_overhead_j
        if is_memory_access:
            energy += self.memory_access_j
        return energy * self._scale(opp)

    def estimate_from_counts(self, class_counts: Mapping[str, float],
                             opp: Optional[OperatingPoint] = None,
                             time_s: float = 0.0) -> float:
        """Energy estimate from instruction-class execution counts.

        This is the quantity the regression-based model fitting predicts; the
        optional ``time_s`` adds the static-energy contribution.
        """
        dynamic = sum(self.per_class_j.get(cls, 0.0) * count
                      for cls, count in class_counts.items())
        dynamic += self.inter_class_overhead_j * sum(class_counts.values())
        dynamic *= self._scale(opp)
        opp = opp or self.nominal_opp
        static = self.static_power_w * opp.static_power_scale(self.nominal_opp) * time_s
        return dynamic + static

    def static_power(self, opp: Optional[OperatingPoint] = None) -> float:
        opp = opp or self.nominal_opp
        return self.static_power_w * opp.static_power_scale(self.nominal_opp)
