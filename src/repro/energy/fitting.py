"""Regression-based energy model generation.

Given a measurement campaign (instruction-class counts and measured energy per
benchmark run), fit per-class energy coefficients by least squares.  This is
the configurable, cost-effective modelling methodology the paper calls for:
no micro-architectural detail is needed beyond the instruction classes, yet
the fitted model predicts whole-program energy accurately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.energy.isa_model import IsaEnergyModel
from repro.energy.measurements import MeasurementCampaign
from repro.hw.core import INSTRUCTION_CLASSES
from repro.hw.dvfs import OperatingPoint


@dataclass
class FitReport:
    """Quality report of a fitted energy model."""

    model: IsaEnergyModel
    coefficients: Dict[str, float]
    mean_absolute_percentage_error: float
    max_absolute_percentage_error: float
    sample_count: int
    per_sample_error: List[float] = field(default_factory=list)

    @property
    def mape_percent(self) -> float:
        return self.mean_absolute_percentage_error * 100.0


def _design_matrix(campaign: MeasurementCampaign,
                   classes: Sequence[str]) -> np.ndarray:
    matrix = np.zeros((len(campaign.samples), len(classes)))
    for row, sample in enumerate(campaign.samples):
        for col, cls in enumerate(classes):
            matrix[row, col] = sample.class_counts.get(cls, 0.0)
    return matrix


def fit_isa_model(campaign: MeasurementCampaign,
                  nominal_opp: OperatingPoint,
                  model_name: Optional[str] = None,
                  static_power_w: float = 0.0) -> FitReport:
    """Fit per-instruction-class coefficients by non-negative least squares.

    Plain least squares is solved first; any negative coefficient is clamped
    to zero and the remaining columns re-fitted, which is a simple but robust
    approximation of non-negative least squares adequate for the well-
    conditioned design matrices produced by the benchmark campaigns.
    """
    if len(campaign.samples) < 3:
        raise AnalysisError("need at least three samples to fit an energy model")

    classes = [cls for cls in INSTRUCTION_CLASSES
               if any(sample.class_counts.get(cls, 0.0) > 0
                      for sample in campaign.samples)]
    if not classes:
        raise AnalysisError("measurement campaign contains no instructions")

    matrix = _design_matrix(campaign, classes)
    target = np.array([sample.measured_energy_j for sample in campaign.samples])

    active = list(range(len(classes)))
    coefficients = np.zeros(len(classes))
    for _ in range(len(classes)):
        if not active:
            break
        sub = matrix[:, active]
        solution, *_ = np.linalg.lstsq(sub, target, rcond=None)
        negative = [active[i] for i, value in enumerate(solution) if value < 0]
        for index, value in zip(active, solution):
            coefficients[index] = max(value, 0.0)
        if not negative:
            break
        active = [i for i in active if i not in negative]

    coefficient_map = {cls: float(coefficients[i]) for i, cls in enumerate(classes)}
    model = IsaEnergyModel.from_coefficients(
        model_name or f"{campaign.platform_name}-fitted", coefficient_map,
        nominal_opp, static_power_w=static_power_w)

    errors = []
    for sample in campaign.samples:
        predicted = model.estimate_from_counts(sample.class_counts)
        truth = sample.true_energy_j
        if truth > 0:
            errors.append(abs(predicted - truth) / truth)
    if not errors:
        raise AnalysisError("cannot evaluate fit quality: zero-energy samples")

    return FitReport(
        model=model,
        coefficients=coefficient_map,
        mean_absolute_percentage_error=float(np.mean(errors)),
        max_absolute_percentage_error=float(np.max(errors)),
        sample_count=len(campaign.samples),
        per_sample_error=[float(e) for e in errors],
    )


def cross_validate(campaign: MeasurementCampaign,
                   nominal_opp: OperatingPoint,
                   folds: int = 3,
                   static_power_w: float = 0.0) -> List[float]:
    """Leave-out cross-validation; returns the per-fold MAPE values."""
    if folds < 2:
        raise ValueError("need at least two folds")
    samples = campaign.samples
    if len(samples) < folds:
        raise AnalysisError("not enough samples for the requested folds")
    errors: List[float] = []
    for fold in range(folds):
        train = MeasurementCampaign(
            campaign.platform_name,
            [s for i, s in enumerate(samples) if i % folds != fold])
        test = [s for i, s in enumerate(samples) if i % folds == fold]
        if len(train.samples) < 3 or not test:
            continue
        report = fit_isa_model(train, nominal_opp, static_power_w=static_power_w)
        fold_errors = []
        for sample in test:
            predicted = report.model.estimate_from_counts(sample.class_counts)
            if sample.true_energy_j > 0:
                fold_errors.append(
                    abs(predicted - sample.true_energy_j) / sample.true_energy_j)
        if fold_errors:
            errors.append(float(np.mean(fold_errors)))
    return errors
