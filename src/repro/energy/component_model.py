"""Coarse-grained, component-based energy model for complex architectures.

Complex boards (Apalis TK1, Jetson TX2/Nano) cannot be modelled at the ISA
level.  Following the component-based approach of Seewald et al. (the basis of
PowProfiler), a system's power draw is decomposed into per-component
contributions — each CPU cluster, the GPU, and a constant board overhead —
where each active component contributes its active power for the time it is
busy and its idle power otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.hw.core import ComplexCore
from repro.hw.dvfs import OperatingPoint
from repro.hw.platform import Platform


@dataclass
class ComponentLoad:
    """Work assigned to one component over an observation window."""

    component: str
    busy_time_s: float
    energy_j: float

    @property
    def utilisation(self) -> float:
        return self.busy_time_s


@dataclass
class ComponentEnergyModel:
    """Board-level energy estimation from per-component activity."""

    platform: Platform
    board_overhead_w: float = 0.5
    #: Optional per-core operating point overrides (core name -> OPP).
    operating_points: Dict[str, OperatingPoint] = field(default_factory=dict)

    def _core(self, name: str) -> ComplexCore:
        core = self.platform.core(name)
        if not isinstance(core, ComplexCore):
            raise AnalysisError(
                f"component model only applies to complex cores, {name!r} is "
                f"{type(core).__name__}")
        return core

    def _opp(self, name: str) -> Optional[OperatingPoint]:
        return self.operating_points.get(name)

    # -- per-task estimation ----------------------------------------------------
    def task_time(self, core_name: str, work_units: float,
                  kernel: Optional[str] = None) -> float:
        core = self._core(core_name)
        return core.execution_time(work_units, kernel, self._opp(core_name))

    def task_energy(self, core_name: str, work_units: float,
                    kernel: Optional[str] = None) -> float:
        """Energy attributable to running a task on a component (active - idle)."""
        core = self._core(core_name)
        opp = self._opp(core_name)
        time_s = core.execution_time(work_units, kernel, opp)
        return (core.active_power(opp) - core.idle_power(opp)) * time_s

    # -- window-level estimation ---------------------------------------------------
    def window_energy(self, loads: List[ComponentLoad], window_s: float) -> float:
        """Total board energy over a window with the given component activity.

        Every complex core contributes its idle power for the whole window;
        busy components add their task energy on top; a constant board
        overhead covers memory, IO and regulators.
        """
        if window_s <= 0:
            raise ValueError("window must have positive length")
        by_component: Dict[str, float] = {}
        for load in loads:
            if load.busy_time_s > window_s + 1e-9:
                raise AnalysisError(
                    f"component {load.component!r} busy for {load.busy_time_s}s "
                    f"in a {window_s}s window")
            by_component[load.component] = (
                by_component.get(load.component, 0.0) + load.energy_j)

        total = self.board_overhead_w * window_s
        for core in self.platform.complex_cores:
            total += core.idle_power(self._opp(core.name)) * window_s
            total += by_component.get(core.name, 0.0)
        return total

    def average_power(self, loads: List[ComponentLoad], window_s: float) -> float:
        return self.window_energy(loads, window_s) / window_s

    def idle_power(self) -> float:
        """Board power with every component idle."""
        return self.board_overhead_w + sum(
            core.idle_power(self._opp(core.name))
            for core in self.platform.complex_cores)
