#!/usr/bin/env python3
"""UAV use cases: SAR deployment and battery-aware precision agriculture.

Part 1 runs the registered ``uav-sar`` scenario (dynamic profiling +
energy-aware coordination) for the search-and-rescue vision pipeline on the
Apalis TK1 and reports the software power and flight-time gain (experiment
E3).  Equivalent CLI:  python -m repro.scenarios run uav-sar

Part 2 simulates a precision-agriculture mission with the battery-aware
manager adapting the software mode in flight (experiment E4) — a mission
simulation rather than a baseline-vs-TeamPlay build, so it stays on the
use-case module's public API.

Run with:  python examples/uav_sar_mission.py
"""

from repro.scenarios import run_scenario
from repro.usecases import uav


def main() -> None:
    # ------------------------------------------------------------------ SAR --
    sar = run_scenario("uav-sar").detail
    print("== SAR deployment on the Apalis TK1 ==")
    print("  TeamPlay schedule:")
    for line in sar.teamplay.schedule.gantt_rows():
        print("    " + line)
    print(f"  software power: traditional {sar.baseline_software_power_w:.2f} W "
          f"-> TeamPlay {sar.teamplay_software_power_w:.2f} W")
    print(f"  mechanical power at cruise: {uav.CRUISE_MECHANICAL_POWER_W:.0f} W")
    print(f"  flight time: {sar.baseline_flight_time_s / 60:.1f} min "
          f"-> {sar.teamplay_flight_time_s / 60:.1f} min "
          f"(+{sar.flight_time_gain_s / 60:.1f} min)")
    print(sar.report.summary())

    # ------------------------------------------------------------------- PA --
    print("\n== precision-agriculture mission (battery-aware adaptation) ==")
    pa = uav.run_pa_mission()
    print(f"  software modes: {pa.software_power_range_w}")
    print(f"  adaptive manager : completed={pa.outcome.completed}, "
          f"flight time {pa.outcome.flight_time_s / 60:.1f} min, "
          f"final SoC {pa.outcome.final_state_of_charge * 100:.0f}%")
    print(f"  full-power only  : completed={pa.static_outcome.completed}, "
          f"flight time {pa.static_outcome.flight_time_s / 60:.1f} min")
    print("  mode changes along the mission:")
    last_mode = None
    for step in pa.outcome.steps:
        if step.mode != last_mode:
            print(f"    t={step.time_s / 60:6.1f} min  phase={step.phase:8s} "
                  f"mode={step.mode:15s} SoC={step.state_of_charge * 100:5.1f}%")
            last_mode = step.mode


if __name__ == "__main__":
    main()
