#!/usr/bin/env python3
"""Quickstart: authoring a compilation pass and reading the profile view.

Walks the pass-authoring flow `docs/passes.md` teaches:

1. register a toy IR-stage pass (an instruction histogram) on a driver's
   `PassManager` — its cache-key contribution widens every downstream
   stage-cache key automatically,
2. flip the stock CSE/peephole passes on for one build and compare the
   resulting worst-case bounds against the baseline,
3. run a registered scenario the way ``python -m repro.scenarios run
   --profile`` does and print the aggregated per-pass wall-time table.

Run with:  PYTHONPATH=src python examples/custom_pass.py
"""

from collections import Counter

from repro.compiler.config import CompilerConfig
from repro.compiler.driver import MultiCriteriaCompiler
from repro.compiler.pipeline import (
    Pass,
    PassContext,
    aggregate_pipeline_stats,
    render_profile,
)
from repro.hw.presets import nucleo_stm32f091rc
from repro.scenarios.runner import run_scenario

#: Repeated `a / b` quotients and `a * b` products: exactly what CSE
#: downgrades to copies — on the Nucleo's Cortex-M0-class core a division
#: is 18 cycles against 1 for the replacing copy, so the WCET delta below
#: is clearly visible.
SOURCE = """
#pragma teamplay task(main) poi(main)
int kernel(int a, int b) {
    int acc = 0;
    for (int i = 0; i < 8; i = i + 1) {
        acc = acc + a / b + i;
        acc = acc + a / b + a * b;
        acc = acc - a * b;
    }
    return acc;
}
"""

SCENARIO = "ecg-wearable"


def opcode_histogram(ctx: PassContext) -> None:
    """The toy pass: count instructions by opcode, report the top one."""
    histogram = Counter(
        instr.opcode.value
        for function in ctx.program.functions.values()
        for instr in function.iter_instructions())
    opcode, count = histogram.most_common(1)[0]
    ctx.statistics[f"most_common_{opcode}"] = count


def main():
    # -- 1. register a custom pass on a driver's pipeline -------------------
    compiler = MultiCriteriaCompiler(nucleo_stm32f091rc())
    compiler.pipeline.manager.register(
        Pass("opcode-histogram", "ir", opcode_histogram,
             cache_key=lambda config: ("opcode-histogram",)),
        after="dead-code-elimination")
    names = [p.name for p in compiler.pipeline.manager.passes("ir")]
    print(f"IR-stage pass list: {' -> '.join(names)}")
    key = compiler.pipeline.manager.stage_key(CompilerConfig.baseline(), "ir")
    print(f"IR stage-cache key widened to {len(key)} elements: {key}")
    probe = compiler.compile(SOURCE, "kernel", CompilerConfig.baseline())
    histogram = {k: v for k, v in probe.pass_statistics.items()
                 if k.startswith("most_common_")}
    timings = compiler.pipeline_stats()["opcode-histogram"]
    print(f"custom pass ran {timings['invocations']}x "
          f"({timings['wall_s'] * 1e3:.2f} ms) and reported {histogram}\n")

    # -- 2. the stock CSE + peephole passes on one build --------------------
    baseline = compiler.compile(SOURCE, "kernel", CompilerConfig.baseline())
    tuned = compiler.compile(
        SOURCE, "kernel",
        CompilerConfig.baseline().with_(enable_cse=True,
                                        enable_peephole=True))
    print(f"baseline  {baseline.config.short_name():14s} "
          f"WCET {baseline.wcet_cycles:8.1f} cycles, "
          f"{baseline.code_size_bytes} B")
    print(f"tuned     {tuned.config.short_name():14s} "
          f"WCET {tuned.wcet_cycles:8.1f} cycles, "
          f"{tuned.code_size_bytes} B  "
          f"(cse_replacements={tuned.pass_statistics['cse_replacements']}, "
          f"peephole_rewrites={tuned.pass_statistics['peephole_rewrites']})\n")

    # -- 3. the --profile view over a scenario run --------------------------
    result = run_scenario(SCENARIO)
    totals = aggregate_pipeline_stats([result.pipeline_stats])
    print(render_profile(totals, title=f"pipeline profile ({SCENARIO})"))


if __name__ == "__main__":
    main()
