#!/usr/bin/env python3
"""The flagship library campaign, end to end on an in-process service.

Runs the registered ``search-refine-validate`` campaign — the paper's
staged-study shape as one durable unit:

1. ``search``  — broad sweep of the E1/E2/E3 workloads at a small budget,
2. ``refine``  — the two best energy improvers re-run at the paper budget
   (the ``top-energy-refine`` hook turns stage-1 results into stage-2
   submissions),
3. ``validate`` — the refined winners plus their companion deployments
   (``companion-deployments`` hook over ``PAPER_SIBLINGS``).

Everything rides the evaluation service's job layer, so repeated stages
coalesce through the request-fingerprint dedup and — with a journal — an
interrupted campaign resumes after restart without re-running completed
stages.  See ``docs/campaigns.md`` for the spec format and hook contract.

Run with:  PYTHONPATH=src python examples/campaign_search_refine_validate.py
"""

from repro.campaigns import CampaignState, get_campaign
from repro.service import EvaluationService


def main():
    campaign = get_campaign("search-refine-validate")
    print(f"campaign: {campaign.name} — {campaign.title}")
    for stage in campaign.stages:
        how = (f"{len(stage.requests)} static requests" if stage.requests
               else f"hook {stage.parameterize!r}")
        print(f"  stage {stage.name:10s} {how}")
    print()

    with EvaluationService(workers=2) as service:
        record = service.submit_campaign(campaign)
        print(f"submitted as {record.id}; running...\n")
        record = service.campaign_result(record.id)

        assert record.state is CampaignState.SUCCEEDED
        print(f"{record.id}: {record.state.value}")
        for stage in record.stages:
            print(f"  {stage.name:10s} {stage.state.value:9s} "
                  f"jobs={stage.jobs} dedup_hits={stage.dedup_hits} "
                  f"wall={stage.wall_s:.2f}s")
            for summary in stage.result_summaries:
                energy = summary.get("energy_improvement_pct")
                improvement = ("" if energy is None
                               else f"  energy improvement {energy:+.2f}%")
                print(f"    - {summary['name']}{improvement}")

        rollup = service.stats()["campaigns"]
        print(f"\ncampaigns stats: {rollup['campaigns']} campaign(s), "
              f"{rollup['jobs_submitted']} jobs, "
              f"{rollup['dedup_hits']} dedup hits")


if __name__ == "__main__":
    main()
