#!/usr/bin/env python3
"""Quickstart: ETS properties as first-class citizens.

This example walks through the core TeamPlay flow on a tiny annotated
program: compile TeamPlay-C, bound its worst-case execution time and energy
statically, compare the bounds against a simulated run, measure side-channel
leakage of a secret-dependent kernel, harden it automatically, prove a small
contract and print the certificate — and finally list the registered
end-to-end scenarios, each runnable with
``python -m repro.scenarios run <name>``.

Run with:  python examples/quickstart.py
"""

from repro import (
    CompilerConfig,
    ContractChecker,
    EnergyAnalyzer,
    MultiCriteriaCompiler,
    SecurityAnalyzer,
    Simulator,
    TaskEvidence,
    WCETAnalyzer,
    parse_csl,
    presets,
)
from repro.frontend import compile_source

SOURCE = """
int samples[64];

#pragma teamplay task(average) poi(average)
int moving_average(int gain) {
    int acc = 0;
    for (int i = 0; i < 64; i = i + 1) {
        acc = acc + samples[i] * gain;
    }
    return acc / 64;
}

#pragma teamplay task(check) secret(pin) poi(check)
int pin_check(int pin, int guess) {
    int diff = 0;
    for (int i = 0; i < 4; i = i + 1) {
        int a = (pin >> (i * 4)) & 15;
        int b = (guess >> (i * 4)) & 15;
        if (a != b) {
            diff = diff + 1;
        }
    }
    return diff == 0;
}
"""

CONTRACT = """
system quickstart {
    period 10 ms;
    deadline 10 ms;
    task average { implements moving_average; budget time 1 ms; budget energy 20 uJ; }
    task check   { implements pin_check;      budget time 1 ms; budget energy 10 uJ; }
    graph { average -> check; }
}
"""


def main() -> None:
    platform = presets.nucleo_stm32f091rc()
    program = compile_source(SOURCE)

    # --- 1. static bounds vs a simulated execution --------------------------
    wcet = WCETAnalyzer(platform).analyze(program, "moving_average")
    wcec = EnergyAnalyzer(platform).analyze(program, "moving_average")
    run = Simulator(platform=platform, program=program).run(
        "moving_average", [3], globals_init={"samples": list(range(64))})
    print("== static analysis vs simulation (moving_average) ==")
    print(f"  WCET bound : {wcet.cycles:8.0f} cycles  ({wcet.time_s * 1e6:7.1f} us)")
    print(f"  simulated  : {run.cycles:8d} cycles  ({run.time_s * 1e6:7.1f} us)")
    print(f"  WCEC bound : {wcec.energy_j * 1e6:8.3f} uJ")
    print(f"  simulated  : {run.energy_j * 1e6:8.3f} uJ")

    # --- 2. multi-criteria compilation ------------------------------------------
    compiler = MultiCriteriaCompiler(platform)
    baseline = compiler.compile(SOURCE, "moving_average", CompilerConfig.baseline())
    optimised = compiler.compile(SOURCE, "moving_average",
                                 CompilerConfig.performance())
    print("\n== compiled variants (moving_average) ==")
    for variant in (baseline, optimised):
        print(f"  {variant.config.short_name():32s} "
              f"WCET {variant.wcet_time_s * 1e6:7.1f} us   "
              f"energy {variant.energy_j * 1e6:7.3f} uJ")

    # --- 3. security analysis and automatic hardening ----------------------------
    analyzer = SecurityAnalyzer(platform, samples_per_class=8)
    report = analyzer.analyze_task(program, "pin_check",
                                   secret_classes=(0x1234, 0x9876),
                                   public_range=1 << 16)
    print("\n== side-channel analysis (pin_check) ==")
    print(f"  timing indiscernibility : {report.timing_score:.2f}")
    print(f"  energy indiscernibility : {report.energy_score:.2f}")
    print(f"  overall security level  : {report.security_level:.2f}")

    hardened_variant = compiler.compile(SOURCE, "pin_check",
                                        CompilerConfig.secure())
    hardened_report = analyzer.analyze_task(hardened_variant.program, "pin_check",
                                            secret_classes=(0x1234, 0x9876),
                                            public_range=1 << 16)
    print(f"  after hardening         : {hardened_report.security_level:.2f}")

    # --- 4. contracts and the certificate ---------------------------------------------
    spec = parse_csl(CONTRACT)
    wcet_check = WCETAnalyzer(platform).analyze(program, "pin_check")
    wcec_check = EnergyAnalyzer(platform).analyze(program, "pin_check")
    evidence = {
        "average": TaskEvidence(wcet_s=wcet.time_s, energy_j=wcec.energy_j),
        "check": TaskEvidence(wcet_s=wcet_check.time_s,
                              energy_j=wcec_check.energy_j),
    }
    certificate = ContractChecker(platform).check(spec, evidence)
    print("\n== contract certificate ==")
    for line in certificate.summary_lines():
        print("  " + line)

    # --- 5. the registered end-to-end scenarios ---------------------------------
    from repro.scenarios import list_scenarios

    print("\n== registered scenarios (python -m repro.scenarios run <name>) ==")
    for scenario in list_scenarios():
        print(f"  {scenario.name:16s} [{scenario.kind}] {scenario.title}")


if __name__ == "__main__":
    main()
