#!/usr/bin/env python3
"""Deep-learning use case: parking detection on the Cortex-M0 and the TK1.

Part 1 trains the parking-spot detector on synthetic scenes and reports its
accuracy (float and int8-quantised).

Part 2 compiles the CNN inner kernels for the Cortex-M0 under several
compiler configurations and operating points, reproducing the variant table
the paper describes (experiment E5).

Part 3 runs the registered ``parking-dl-tk1`` scenario: the network deployed
on the Apalis TK1 with the coordination layer, compared against the
hand-optimised mapping (experiment E6).
Equivalent CLI:  python -m repro.scenarios run parking-dl-tk1

Run with:  python examples/parking_dl_deployment.py
"""

from repro.dl import ParkingDataset, ParkingNet
from repro.scenarios import run_scenario
from repro.toolchain.report import format_table
from repro.usecases import deep_learning


def main() -> None:
    # ---------------------------------------------------------- the network --
    dataset = ParkingDataset(spots=8, seed=3)
    network = ParkingNet(dataset)
    network.train(dataset.batch(40))
    test_scenes = dataset.batch(25)
    float_accuracy = network.accuracy(test_scenes)
    network.quantize()
    int8_accuracy = network.accuracy(test_scenes)
    scene = test_scenes[0]
    print("== parking detector ==")
    print(f"  per-spot accuracy: float {float_accuracy * 100:.1f}%  "
          f"int8 {int8_accuracy * 100:.1f}%")
    print(f"  one inference: {network.inference_macs()} MACs")
    print(f"  example scene: {scene.free_spots} free spots, "
          f"network reports {network.count_free_spots(scene.image)}")

    # ------------------------------------------------- E5: Cortex-M0 variants --
    print("\n== E5: compiled kernel variants on the Cortex-M0 ==")
    rows = deep_learning.run_m0_variants()
    nominal_rows = [row.as_dict() for row in rows if row.opp.endswith("48MHz")]
    print(format_table(nominal_rows))
    print(f"  ({len(rows)} variants in total across all operating points)")

    # ------------------------------------------------------ E6: TK1 deployment --
    print("\n== E6: TK1 deployment vs hand-optimised mapping ==")
    comparison = run_scenario("parking-dl-tk1").detail
    print(comparison.report.summary())
    print(f"  energy ratio (TeamPlay / manual): {comparison.energy_ratio:.3f}")
    print(f"  time ratio   (TeamPlay / manual): {comparison.time_ratio:.3f}")
    print("  TeamPlay schedule:")
    for line in comparison.teamplay_schedule.gantt_rows():
        print("    " + line)


if __name__ == "__main__":
    main()
