#!/usr/bin/env python3
"""Camera-pill use case: the full predictable-architecture workflow.

Runs the registered ``camera-pill`` scenario (the capsule-endoscopy imaging
pipeline: traditional compiler configuration vs TeamPlay multi-objective
exploration) through the shared scenario runner, then prints the per-task
ETS file, the schedule, the certificate, and the improvement the paper
reports as experiment E1 (18% performance / 19% energy).

Equivalent CLI:  python -m repro.scenarios run camera-pill

Run with:  python examples/camera_pill_pipeline.py
"""

from repro.scenarios import run_scenario
from repro.toolchain.report import format_table


def main() -> None:
    # The scenario's post-processing hook shapes the generic result into
    # the paper's CameraPillComparison (stored on ``detail``).
    comparison = run_scenario("camera-pill").detail

    print("== per-task ETS properties (TeamPlay build) ==")
    rows = []
    for task, properties in comparison.teamplay.task_properties.items():
        rows.append({
            "task": task,
            "function": properties["function"],
            "wcet_ms": properties["wcet_s"] * 1e3,
            "energy_uJ": properties["energy_j"] * 1e6,
        })
    print(format_table(rows))

    print("\n== schedule (TeamPlay build) ==")
    for line in comparison.teamplay.schedule.gantt_rows():
        print("  " + line)

    print("\n== certificate ==")
    for line in comparison.teamplay.certificate.summary_lines():
        print("  " + line)

    print("\n== glue code (first lines) ==")
    for line in comparison.teamplay.glue_code.splitlines()[:12]:
        print("  " + line)

    print("\n== E1: traditional toolchain vs TeamPlay ==")
    print(comparison.report.summary())
    print(f"  radio energy per frame: "
          f"{comparison.radio_energy_per_frame_j * 1e6:.1f} uJ")


if __name__ == "__main__":
    main()
