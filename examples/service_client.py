#!/usr/bin/env python3
"""Quickstart: the evaluation service's HTTP/JSON API.

Boots the evaluation service with its stdlib HTTP server on a free local
port, then talks to it the way any remote client would — pure
:mod:`http.client`, no library imports from the reproduction on the client
side of the wire:

1. ``GET /scenarios`` — discover what the registry can evaluate,
2. ``POST /jobs`` — submit a scenario evaluation (twice, to show identical
   submissions coalescing onto one computation),
3. ``GET /jobs/<id>?wait=`` — long-poll until the shared job succeeds (the
   server holds the reply instead of the client busy-polling),
4. ``POST /jobs`` with a JSON *list* — a whole batch as one job,
5. ``GET /stats`` — queue/store/worker/journal/analysis-cache counters.

Against a long-running server (``python -m repro.service serve``), skip the
in-process boot and point ``HOST``/``PORT`` at it; the client half of this
file is unchanged.

Run with:  python examples/service_client.py
"""

import http.client
import json
import threading

from repro.service import EvaluationService
from repro.service.http import create_server

SCENARIO = "ecg-wearable"


def request(address, method, path, payload=None):
    """One JSON round-trip against the service."""
    connection = http.client.HTTPConnection(*address, timeout=120)
    try:
        body = None if payload is None else json.dumps(payload)
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def main():
    # -- boot: service + HTTP API on a free port (port 0) -------------------
    service = EvaluationService(workers=2)
    server = create_server(service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    address = server.server_address[:2]
    print(f"service on http://{address[0]}:{address[1]}\n")

    try:
        # -- 1. discover scenarios ------------------------------------------
        _, listing = request(address, "GET", "/scenarios")
        print(f"{len(listing['scenarios'])} registered scenarios:")
        for row in listing["scenarios"]:
            print(f"  {row['name']:16s} [{row['kind']}] {row['title']}")

        # -- 2. submit the same evaluation twice ----------------------------
        _, first = request(address, "POST", "/jobs",
                           {"scenario": SCENARIO, "priority": 1})
        _, second = request(address, "POST", "/jobs", {"scenario": SCENARIO})
        print(f"\nsubmitted {SCENARIO!r} twice: job ids "
              f"{first['id']} and {second['id']} "
              f"({'shared' if first['id'] == second['id'] else 'distinct'}, "
              f"{second['submissions']} submissions)")

        # -- 3. long-poll the shared job ------------------------------------
        document = first
        while document["state"] in ("pending", "running"):
            # The server holds the reply until the job is terminal (or its
            # per-request cap elapses), so no sleep/poll loop is needed.
            _, document = request(address, "GET",
                                  f"/jobs/{first['id']}?wait=30")
        print(f"job {document['id']}: {document['state']}")
        summary = document["result"]
        print(f"  {summary['title']}: energy "
              f"{summary['baseline_energy_j']:.6g} J -> "
              f"{summary['teamplay_energy_j']:.6g} J "
              f"({summary['energy_improvement_pct']:+.1f}%), deadline "
              f"{'met' if summary['deadlines_met'] else 'MISSED'}")

        # -- 4. a batch: several requests as one job ------------------------
        _, batch = request(address, "POST", "/jobs",
                           [{"scenario": SCENARIO},
                            {"scenario": "smart-meter"}])
        while batch["state"] in ("pending", "running"):
            _, batch = request(address, "GET",
                               f"/jobs/{batch['id']}?wait=30")
        names = [row["name"] for row in batch["result"]["batch"]]
        print(f"batch job {batch['id']}: {batch['state']} "
              f"({batch['result']['count']} results: {', '.join(names)})")

        # -- 5. service counters --------------------------------------------
        _, stats = request(address, "GET", "/stats")
        queue = stats["queue"]
        print(f"\nqueue: {queue['submitted']} submitted, "
              f"{queue['deduplicated']} deduplicated, "
              f"{queue['succeeded']} computed")
        print(f"store: {stats['store']['entries']} cached results, "
              f"{stats['store']['hits']} hits")
        print(f"analysis cache: {stats['analysis_cache']['platforms']}")
    finally:
        server.shutdown()
        server.server_close()
        service.close()


if __name__ == "__main__":
    main()
