#!/usr/bin/env python3
"""Space use case: LEON3/RTEMS image pipeline with SpaceWire transmission.

Runs the registered ``space-spacewire`` scenario on the dual-core GR712RC
platform: the traditional single-core deployment against the TeamPlay
energy-aware dual-core deployment with DVFS.  The scenario's post-processing
replays the schedule on the RTEMS-style periodic executive to confirm that
no deadline is missed; this script prints that validation and the RTEMS glue
code skeleton.

Equivalent CLI:  python -m repro.scenarios run space-spacewire

Run with:  python examples/space_spacewire.py
"""

from repro.scenarios import run_scenario


def main() -> None:
    comparison = run_scenario("space-spacewire").detail

    print("== TeamPlay schedule on the GR712RC ==")
    for line in comparison.teamplay.schedule.gantt_rows():
        print("  " + line)
    print(f"  makespan: {comparison.teamplay.schedule.makespan_s * 1e3:.2f} ms "
          f"(deadline {comparison.teamplay.spec.deadline_s() * 1e3:.0f} ms)")

    print("\n== dynamic validation (periodic executive, 20 periods) ==")
    log = comparison.executive_log
    print(f"  deadline misses : {log.deadline_misses}")
    print(f"  worst makespan  : {log.worst_makespan_s * 1e3:.2f} ms")
    print(f"  average power   : {log.average_power_w * 1e3:.1f} mW")

    print("\n== energy per 200 ms period ==")
    print(f"  traditional deployment : "
          f"{comparison.baseline_energy_per_period_j * 1e3:.2f} mJ")
    print(f"  TeamPlay deployment    : "
          f"{comparison.teamplay_energy_per_period_j * 1e3:.2f} mJ")
    print(f"  SpaceWire link         : "
          f"{comparison.spacewire_energy_per_period_j * 1e3:.2f} mJ")

    print("\n== E2: improvement ==")
    print(comparison.report.summary())

    print("\n== RTEMS glue code (first lines) ==")
    for line in comparison.teamplay.glue_code.splitlines()[:14]:
        print("  " + line)


if __name__ == "__main__":
    main()
